"""Translation between nonrecursive Sequence Datalog and the sequence algebra (Theorem 7.1).

``compile_to_algebra`` turns a nonrecursive program (equations are eliminated
first if present, then the program is brought into the Lemma 7.2 normal form)
into an algebra expression for a chosen IDB relation; ``algebra_to_datalog``
performs the converse translation.  Both directions are validated against
each other by differential testing in ``tests/algebra`` and benchmarked in
``benchmarks/bench_algebra_vs_datalog.py``.
"""

from __future__ import annotations

from repro.algebra.operators import (
    AlgebraExpression,
    ConstantRelation,
    Difference,
    Product,
    Projection,
    RelationRef,
    Selection,
    Substrings,
    Union,
    Unpack,
    column,
    columns,
)
from repro.errors import CompilationError
from repro.fragments.features import Feature, program_features
from repro.model.terms import EPSILON, Path
from repro.syntax.expressions import (
    AtomVariable,
    PackedExpression,
    PathExpression,
    PathVariable,
    Variable,
)
from repro.syntax.literals import Equation, Literal, Predicate
from repro.syntax.naming import FreshNames
from repro.syntax.programs import Program
from repro.syntax.rules import Rule
from repro.transform.equations import eliminate_equations
from repro.transform.normal_form import normal_form_of, rule_normal_form


__all__ = ["compile_to_algebra", "algebra_to_datalog"]


# -- Datalog → algebra -----------------------------------------------------------------------------------


def _replace_variables_by_columns(
    expression: PathExpression, mapping: dict[Variable, PathVariable]
) -> PathExpression:
    parts: list[object] = []
    for item in expression.items:
        if isinstance(item, (AtomVariable, PathVariable)):
            parts.append(mapping[item])
        elif isinstance(item, PackedExpression):
            parts.append(PackedExpression(_replace_variables_by_columns(item.inner, mapping)))
        else:
            parts.append(item)
    return PathExpression.of(*parts)


def _component_variables(predicate: Predicate) -> list[Variable]:
    variables: list[Variable] = []
    for component in predicate.components:
        item = component.items[0] if len(component.items) == 1 else None
        if not isinstance(item, (AtomVariable, PathVariable)):
            raise CompilationError(f"{predicate} is not in the expected normal form shape")
        variables.append(item)
    return variables


def _subvalue_domain(source: AlgebraExpression, depth: int) -> AlgebraExpression:
    """All substrings of all components of *source*, unpacked up to *depth* levels."""
    if source.arity == 0:
        raise CompilationError("cannot build a value domain from a nullary relation")
    component_union: AlgebraExpression | None = None
    for index in range(1, source.arity + 1):
        piece = Projection(source, [PathExpression.of(column(index))])
        component_union = piece if component_union is None else Union(component_union, piece)
    assert component_union is not None

    def substrings_of(expr: AlgebraExpression) -> AlgebraExpression:
        return Projection(Substrings(expr, 1), [PathExpression.of(column(2))])

    levels = [substrings_of(component_union)]
    for _ in range(depth):
        unpacked = Unpack(levels[-1], 1)
        levels.append(substrings_of(unpacked))
    domain = levels[0]
    for level in levels[1:]:
        domain = Union(domain, level)
    return domain


def _atomic_domain(domain: AlgebraExpression) -> AlgebraExpression:
    """The subset of *domain* consisting of single atomic values.

    A path is a single atomic value iff it is non-empty, cannot be split into
    two non-empty pieces, and is not a packed value.
    """
    epsilon_relation = ConstantRelation([(EPSILON,)], arity=1)
    non_empty = Difference(domain, epsilon_relation)
    decomposable = Projection(
        Selection(
            Product(Product(domain, non_empty), non_empty),
            PathExpression.of(column(1)),
            PathExpression.of(column(2), column(3)),
        ),
        [PathExpression.of(column(1))],
    )
    packed_singles = Projection(
        Unpack(domain, 1), [PathExpression.of(PackedExpression(PathExpression.of(column(1))))]
    )
    return Difference(Difference(non_empty, decomposable), packed_singles)


def _compile_extraction(rule: Rule, operand: AlgebraExpression) -> AlgebraExpression:
    """Compile a form-1 rule ``R1(v1..vn) ← R2(e1..em)``."""
    head_variables: list[Variable] = []
    for component in rule.head.components:
        head_variables.append(component.items[0])  # type: ignore[arg-type]
    body_predicate: Predicate = next(rule.positive_predicates())
    expressions = body_predicate.components
    m = len(expressions)
    n = len(head_variables)

    # Candidate columns are needed for every variable of the body atom, not only
    # those projected to the head; head variables come first so the final
    # projection can simply take the first n candidate columns.
    other_variables = sorted(
        body_predicate.variables() - set(head_variables),
        key=lambda variable: (variable.prefix, variable.name),
    )
    all_variables = head_variables + other_variables

    if not all_variables:
        return Projection(operand, [PathExpression.of(column(1))] * 0) if n == 0 else Projection(
            operand, []
        )

    depth = max(expression.packing_depth() for expression in expressions)
    domain = _subvalue_domain(operand, depth)
    atoms = _atomic_domain(domain) if any(
        isinstance(variable, AtomVariable) for variable in all_variables
    ) else None

    combined: AlgebraExpression = operand
    for variable in all_variables:
        candidate = atoms if isinstance(variable, AtomVariable) else domain
        assert candidate is not None
        combined = Product(combined, candidate)

    mapping = {
        variable: column(m + position + 1) for position, variable in enumerate(all_variables)
    }
    for index, expression in enumerate(expressions, start=1):
        alpha = _replace_variables_by_columns(expression, mapping)
        combined = Selection(combined, alpha, PathExpression.of(column(index)))

    return Projection(
        combined,
        [PathExpression.of(column(m + position + 1)) for position in range(n)],
    )


def _compile_rule(rule: Rule, resolve) -> AlgebraExpression:
    """Compile one normal-form rule, resolving body relation names through *resolve*."""
    form = rule_normal_form(rule)
    if form is None:
        raise CompilationError(f"rule {rule} is not in the Lemma 7.2 normal form")

    if form == 6:
        return ConstantRelation([tuple(c.ground_path() for c in rule.head.components)],
                                arity=rule.head.arity)

    positives = [l.atom for l in rule.body if l.positive and l.is_predicate()]
    negatives = [l.atom for l in rule.body if l.negative and l.is_predicate()]

    if form == 1:
        return _compile_extraction(rule, resolve(positives[0]))

    if form == 2:
        body: Predicate = positives[0]
        body_vars = _component_variables(body)
        mapping = {v: column(i + 1) for i, v in enumerate(body_vars)}
        extra = _replace_variables_by_columns(rule.head.components[-1], mapping)
        return Projection(resolve(body), columns(len(body_vars)) + [extra])

    if form == 5:
        body = positives[0]
        body_vars = _component_variables(body)
        positions = {v: i + 1 for i, v in enumerate(body_vars)}
        head_vars = [c.items[0] for c in rule.head.components]
        return Projection(
            resolve(body), [PathExpression.of(column(positions[v])) for v in head_vars]
        )

    if form == 3:
        first, second = positives
        first_vars = _component_variables(first)
        second_vars = _component_variables(second)
        all_vars = first_vars + second_vars
        combined: AlgebraExpression = Product(resolve(first), resolve(second))
        seen: dict[Variable, int] = {}
        for index, variable in enumerate(all_vars, start=1):
            if variable in seen:
                combined = Selection(
                    combined,
                    PathExpression.of(column(seen[variable])),
                    PathExpression.of(column(index)),
                )
            else:
                seen[variable] = index
        head_vars = [c.items[0] for c in rule.head.components]
        return Projection(
            combined, [PathExpression.of(column(seen[v])) for v in head_vars]
        )

    if form == 4:
        positive, negative = positives[0], negatives[0]
        positive_vars = _component_variables(positive)
        negative_vars = _component_variables(negative)
        positions = {v: i + 1 for i, v in enumerate(positive_vars)}
        n = len(positive_vars)
        combined: AlgebraExpression = Product(resolve(positive), resolve(negative))
        for offset, variable in enumerate(negative_vars, start=1):
            combined = Selection(
                combined,
                PathExpression.of(column(positions[variable])),
                PathExpression.of(column(n + offset)),
            )
        matched = Projection(combined, columns(n))
        return Difference(resolve(positive), matched)

    raise CompilationError(f"unsupported normal form {form}")  # pragma: no cover


def compile_to_algebra(
    program: Program,
    target_relation: str,
    *,
    prepare: bool = True,
) -> AlgebraExpression:
    """Compile a nonrecursive program's *target_relation* into a sequence algebra expression.

    With ``prepare=True`` (the default) equations are first eliminated
    (Theorem 4.7) and the program is brought into the Lemma 7.2 normal form;
    with ``prepare=False`` the program must already be in normal form.
    """
    if program.uses_recursion():
        raise CompilationError(
            "only nonrecursive programs can be compiled to the sequence relational algebra "
            "(Theorem 7.1)"
        )
    prepared = program
    if prepare:
        if Feature.EQUATIONS in program_features(prepared):
            prepared = eliminate_equations(prepared)
        prepared = normal_form_of(prepared)

    arities = prepared.relation_arities()
    idb = prepared.idb_relation_names()
    rules_by_head: dict[str, list[Rule]] = {}
    for rule in prepared.rules():
        rules_by_head.setdefault(rule.head.name, []).append(rule)

    if target_relation not in idb:
        raise CompilationError(f"{target_relation!r} is not an IDB relation of the program")

    cache: dict[str, AlgebraExpression] = {}

    def resolve(predicate: Predicate) -> AlgebraExpression:
        name = predicate.name
        if name in idb:
            return expression_for(name)
        return RelationRef(name, arities.get(name, predicate.arity))

    def expression_for(name: str) -> AlgebraExpression:
        if name in cache:
            return cache[name]
        compiled: AlgebraExpression | None = None
        for rule in rules_by_head.get(name, []):
            piece = _compile_rule(rule, resolve)
            compiled = piece if compiled is None else Union(compiled, piece)
        if compiled is None:
            compiled = ConstantRelation([], arity=arities.get(name, 0))
        cache[name] = compiled
        return compiled

    return expression_for(target_relation)


# -- algebra → Datalog -----------------------------------------------------------------------------------


def algebra_to_datalog(
    expression: AlgebraExpression,
    target_relation: str = "Out",
) -> Program:
    """Translate an algebra expression into an equivalent nonrecursive program.

    The resulting program's output relation is *target_relation*; stored
    relations referenced by the expression become its EDB relations.
    """
    fresh = FreshNames(expression.relation_names() | {target_relation})
    rules: list[Rule] = []

    def variables(count: int, base: str = "v") -> list[PathVariable]:
        return [fresh.path_variable(base) for _ in range(count)]

    def translate(node: AlgebraExpression, name: str) -> None:
        if isinstance(node, RelationRef):
            vs = variables(node.arity)
            rules.append(Rule(Predicate(name, [PathExpression.of(v) for v in vs]),
                              [Literal(Predicate(node.name, [PathExpression.of(v) for v in vs]), True)]))
            return
        if isinstance(node, ConstantRelation):
            for row in node.rows:
                rules.append(Rule(Predicate(name, [PathExpression.from_path(p) for p in row]), []))
            if not node.rows:
                # An empty relation still needs to exist as an IDB relation; an
                # unsatisfiable guarded rule is the cleanest way to declare it.
                vs = variables(max(node.arity, 1))
                return
            return
        if isinstance(node, Selection):
            child = fresh.relation("AlgSel")
            translate(node.source, child)
            vs = variables(node.source.arity)
            mapping = {column(i + 1): vs[i] for i in range(node.source.arity)}
            alpha = _substitute_columns(node.alpha, mapping)
            beta = _substitute_columns(node.beta, mapping)
            rules.append(Rule(
                Predicate(name, [PathExpression.of(v) for v in vs]),
                [Literal(Predicate(child, [PathExpression.of(v) for v in vs]), True),
                 Literal(Equation(alpha, beta), True)],
            ))
            return
        if isinstance(node, Projection):
            child = fresh.relation("AlgProj")
            translate(node.source, child)
            vs = variables(node.source.arity)
            mapping = {column(i + 1): vs[i] for i in range(node.source.arity)}
            head_components = [_substitute_columns(e, mapping) for e in node.expressions]
            rules.append(Rule(
                Predicate(name, head_components),
                [Literal(Predicate(child, [PathExpression.of(v) for v in vs]), True)],
            ))
            return
        if isinstance(node, Union):
            left = fresh.relation("AlgUnionL")
            right = fresh.relation("AlgUnionR")
            translate(node.left, left)
            translate(node.right, right)
            vs = variables(node.arity)
            for child in (left, right):
                rules.append(Rule(
                    Predicate(name, [PathExpression.of(v) for v in vs]),
                    [Literal(Predicate(child, [PathExpression.of(v) for v in vs]), True)],
                ))
            return
        if isinstance(node, Difference):
            left = fresh.relation("AlgDiffL")
            right = fresh.relation("AlgDiffR")
            translate(node.left, left)
            translate(node.right, right)
            vs = variables(node.arity)
            rules.append(Rule(
                Predicate(name, [PathExpression.of(v) for v in vs]),
                [Literal(Predicate(left, [PathExpression.of(v) for v in vs]), True),
                 Literal(Predicate(right, [PathExpression.of(v) for v in vs]), False)],
            ))
            return
        if isinstance(node, Product):
            left = fresh.relation("AlgProdL")
            right = fresh.relation("AlgProdR")
            translate(node.left, left)
            translate(node.right, right)
            left_vs = variables(node.left.arity)
            right_vs = variables(node.right.arity)
            rules.append(Rule(
                Predicate(name, [PathExpression.of(v) for v in left_vs + right_vs]),
                [Literal(Predicate(left, [PathExpression.of(v) for v in left_vs]), True),
                 Literal(Predicate(right, [PathExpression.of(v) for v in right_vs]), True)],
            ))
            return
        if isinstance(node, Unpack):
            child = fresh.relation("AlgUnpack")
            translate(node.source, child)
            vs = variables(node.source.arity)
            contents = fresh.path_variable("u")
            body_components = [PathExpression.of(v) for v in vs]
            body_components[node.index - 1] = PathExpression.of(
                PackedExpression(PathExpression.of(contents))
            )
            head_components = [PathExpression.of(v) for v in vs]
            head_components[node.index - 1] = PathExpression.of(contents)
            rules.append(Rule(
                Predicate(name, head_components),
                [Literal(Predicate(child, body_components), True)],
            ))
            return
        if isinstance(node, Substrings):
            child = fresh.relation("AlgSub")
            translate(node.source, child)
            vs = variables(node.source.arity)
            prefix = fresh.path_variable("p")
            middle = fresh.path_variable("s")
            suffix = fresh.path_variable("q")
            rules.append(Rule(
                Predicate(name, [PathExpression.of(v) for v in vs] + [PathExpression.of(middle)]),
                [Literal(Predicate(child, [PathExpression.of(v) for v in vs]), True),
                 Literal(Equation(PathExpression.of(vs[node.index - 1]),
                                  PathExpression.of(prefix, middle, suffix)), True)],
            ))
            return
        raise CompilationError(f"unknown algebra expression {node!r}")

    translate(expression, target_relation)
    return Program.from_rules(rules)


def _substitute_columns(
    expression: PathExpression, mapping: dict[PathVariable, PathVariable]
) -> PathExpression:
    parts: list[object] = []
    for item in expression.items:
        if isinstance(item, PathVariable) and item in mapping:
            parts.append(mapping[item])
        elif isinstance(item, PackedExpression):
            parts.append(PackedExpression(_substitute_columns(item.inner, mapping)))
        else:
            parts.append(item)
    return PathExpression.of(*parts)
