"""The sequence relational algebra of Section 7 and its compilers (Theorem 7.1)."""

from repro.algebra.compiler import algebra_to_datalog, compile_to_algebra
from repro.algebra.evaluator import evaluate_algebra
from repro.algebra.operators import (
    AlgebraExpression,
    ConstantRelation,
    Difference,
    Product,
    Projection,
    RelationRef,
    Selection,
    Substrings,
    Union,
    Unpack,
    column,
    columns,
)

__all__ = [
    "AlgebraExpression",
    "ConstantRelation",
    "Difference",
    "Product",
    "Projection",
    "RelationRef",
    "Selection",
    "Substrings",
    "Union",
    "Unpack",
    "algebra_to_datalog",
    "column",
    "columns",
    "compile_to_algebra",
    "evaluate_algebra",
]
