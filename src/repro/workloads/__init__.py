"""Deterministic workload generators used by the tests and benchmarks."""

from repro.workloads.generators import (
    all_as_instance,
    as_edge_pairs,
    layered_graph_instance,
    power_law_graph_instance,
    prefix_tree_instance,
    random_event_log_instance,
    random_graph_instance,
    random_nfa_instance,
    random_packed_instance,
    random_positive_program,
    random_string_instance,
    random_two_bounded_instance,
    random_word,
    sales_instance,
    update_stream,
)

__all__ = [
    "all_as_instance",
    "as_edge_pairs",
    "layered_graph_instance",
    "power_law_graph_instance",
    "prefix_tree_instance",
    "random_event_log_instance",
    "random_graph_instance",
    "random_nfa_instance",
    "random_packed_instance",
    "random_positive_program",
    "random_string_instance",
    "random_two_bounded_instance",
    "random_word",
    "sales_instance",
    "update_stream",
]
