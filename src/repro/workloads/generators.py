"""Workload generators for tests and benchmarks.

The paper has no experimental section, so these generators produce the
instance families its proofs and examples talk about: sets of strings over a
small alphabet, the ``R(a^n)`` families of the squaring argument, graphs
encoded as length-two paths (Section 5.1.1), two-bounded instances
(Lemma 5.4), NFAs stored in relations (Example 2.1), process-mining event
logs, and nested JSON-like sales data (Introduction).

All generators take an explicit ``seed`` and are deterministic, so benchmark
runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.model.instance import Fact, Instance
from repro.model.terms import Packed, Path

__all__ = [
    "random_word",
    "random_string_instance",
    "all_as_instance",
    "random_graph_instance",
    "layered_graph_instance",
    "power_law_graph_instance",
    "prefix_tree_instance",
    "as_edge_pairs",
    "random_two_bounded_instance",
    "random_nfa_instance",
    "random_event_log_instance",
    "sales_instance",
    "random_packed_instance",
    "random_positive_program",
    "update_stream",
    "churn_stream",
    "low_overlap_goal_stream",
]


def random_word(generator: random.Random, alphabet: Sequence[str], max_length: int) -> Path:
    """A random flat path over *alphabet* of length between 0 and *max_length*."""
    length = generator.randint(0, max_length)
    return Path(tuple(generator.choice(alphabet) for _ in range(length)))


def random_string_instance(
    *,
    relation: str = "R",
    paths: int = 10,
    alphabet: Sequence[str] = ("a", "b"),
    max_length: int = 6,
    seed: int = 0,
) -> Instance:
    """A unary relation of random words — the generic string workload."""
    generator = random.Random(seed)
    instance = Instance()
    instance.ensure_relation(relation)
    for _ in range(paths):
        instance.add(relation, random_word(generator, alphabet, max_length))
    return instance


def all_as_instance(n: int, *, relation: str = "R", letter: str = "a") -> Instance:
    """The singleton instance ``{R(a^n)}`` used by the squaring argument (Theorem 5.3)."""
    return Instance.from_paths(relation, [Path((letter,) * n)])


def random_graph_instance(
    *,
    relation: str = "R",
    nodes: int = 6,
    edges: int = 10,
    seed: int = 0,
    ensure_path: tuple[str, str] | None = None,
) -> Instance:
    """A directed graph encoded as length-two paths (Section 5.1.1).

    Node names are ``a``, ``b``, ``n2`` … ``n{nodes-1}`` so that the
    reachability query's endpoints exist.  When *ensure_path* is given, a
    directed path between the two named nodes is added.
    """
    generator = random.Random(seed)
    names = ["a", "b"] + [f"n{i}" for i in range(2, max(nodes, 2))]
    instance = Instance()
    instance.ensure_relation(relation)
    for _ in range(edges):
        source, target = generator.choice(names), generator.choice(names)
        instance.add(relation, Path((source, target)))
    if ensure_path is not None:
        source, target = ensure_path
        waypoints = [source] + generator.sample(names, k=min(2, len(names))) + [target]
        for first, second in zip(waypoints, waypoints[1:]):
            instance.add(relation, Path((first, second)))
    return instance


def layered_graph_instance(
    *,
    relation: str = "R",
    layers: int = 8,
    width: int = 8,
    edges_per_node: int = 2,
    seed: int = 0,
) -> Instance:
    """A layered DAG encoded as length-two paths, for scaling benchmarks.

    Nodes are arranged in *layers* columns of *width* rows; every node has
    *edges_per_node* random edges into the next layer, so the transitive
    closure is large (up to ``layers² · width²`` pairs) but guaranteed
    finite and acyclic.  Node ``a`` sits in the first layer and ``b`` in the
    last, with a guaranteed directed path between them, matching the
    endpoints of the reachability query.
    """
    generator = random.Random(seed)
    columns: list[list[str]] = [
        [f"l{layer}n{node}" for node in range(width)] for layer in range(layers)
    ]
    columns[0][0] = "a"
    columns[-1][0] = "b"
    instance = Instance()
    instance.ensure_relation(relation)
    for source_layer, target_layer in zip(columns, columns[1:]):
        for source in source_layer:
            for _ in range(edges_per_node):
                instance.add(relation, Path((source, generator.choice(target_layer))))
    waypoints = ["a"] + [generator.choice(column) for column in columns[1:-1]] + ["b"]
    for first, second in zip(waypoints, waypoints[1:]):
        instance.add(relation, Path((first, second)))
    return instance


def power_law_graph_instance(
    *,
    relation: str = "R",
    nodes: int = 64,
    edges: int = 256,
    exponent: float = 1.2,
    seed: int = 0,
) -> Instance:
    """A directed graph with power-law degree skew, as length-two paths.

    Endpoints are drawn by preferential attachment: each edge picks its
    source and target with probability proportional to ``(rank+1)^-exponent``
    over the node ranks, so a few hub nodes concentrate most of the edges.
    This is the hostile key distribution for hash partitioning — all of a
    hub's adjacency hashes to one shard, so balanced-work claims that hold
    on the friendly layered graphs must be re-checked here.  Self-loops are
    skipped (they add no reachability information and would let the
    transitive closure grow degenerate cycles); node ``a`` is the top hub
    and ``b`` the second, matching the reachability query's endpoints.
    """
    generator = random.Random(seed)
    names = ["a", "b"] + [f"n{i}" for i in range(2, max(nodes, 2))]
    weights = [(rank + 1) ** -exponent for rank in range(len(names))]
    instance = Instance()
    instance.ensure_relation(relation)
    added = 0
    while added < edges:
        source, target = generator.choices(names, weights=weights, k=2)
        if source == target:
            continue
        instance.add(relation, Path((source, target)))
        added += 1
    return instance


def prefix_tree_instance(
    *,
    relation: str = "N",
    depth: int = 4,
    alphabet: Sequence[str] = ("a", "b"),
    keep: float = 0.85,
    seed: int = 0,
) -> Instance:
    """A prefix-closed set of node paths — the hierarchy-reachability workload.

    Node identifiers are paths over *alphabet*; the implicit edges of the
    hierarchy go from each node ``$v`` to its children ``$v·letter``, so the
    node set doubles as the graph.  Starting from the root ``ϵ``, each child
    survives with probability *keep* (subtrees below a pruned child are
    pruned with it, keeping the set prefix-closed).  This is the instance
    family the single-source descendant-reachability goal runs on — the
    recursion walks the hierarchy by *extending* the bound node path, which
    is exactly the shape the expanding-magic-recursion check refuses and the
    generalized, tabled rewriting handles.
    """
    generator = random.Random(seed)
    instance = Instance()
    instance.ensure_relation(relation)
    frontier: list[Path] = [Path(())]
    instance.add(relation, Path(()))
    for _ in range(depth):
        next_frontier: list[Path] = []
        for node in frontier:
            for letter in alphabet:
                if generator.random() < keep:
                    child = Path(node.elements + (letter,))
                    instance.add(relation, child)
                    next_frontier.append(child)
        frontier = next_frontier
    return instance


def as_edge_pairs(instance: Instance, *, relation: str = "R", output: str = "E") -> Instance:
    """Re-encode a graph of length-two paths as a binary relation of node pairs.

    The graph workloads store an edge ``x → y`` as the unary fact ``R(x·y)``
    (Section 5.1.1).  The binary encoding ``E(x, y)`` exposes the source and
    target as separate argument positions, which is what the goal-directed
    query benchmarks bind (e.g. all nodes reachable *from a given source*).
    """
    result = Instance()
    result.ensure_relation(output)
    for path in instance.paths(relation):
        if len(path) == 2:
            result.add(output, path[0:1], path[1:2])
    return result


def random_two_bounded_instance(
    *,
    relations: Iterable[str] = ("R", "B"),
    nodes: int = 5,
    facts_per_relation: int = 6,
    seed: int = 0,
) -> Instance:
    """A two-bounded instance: every path has length one or two (Lemma 5.4)."""
    generator = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    instance = Instance()
    for relation in relations:
        instance.ensure_relation(relation)
        for _ in range(facts_per_relation):
            if generator.random() < 0.5:
                instance.add(relation, Path((generator.choice(names),)))
            else:
                instance.add(relation, Path((generator.choice(names), generator.choice(names))))
    return instance


def random_nfa_instance(
    *,
    states: int = 3,
    alphabet: Sequence[str] = ("a", "b"),
    transitions: int = 6,
    words: int = 8,
    max_word_length: int = 6,
    seed: int = 0,
) -> Instance:
    """An NFA stored in relations N, D, F plus a unary relation R of input words (Example 2.1)."""
    generator = random.Random(seed)
    state_names = [f"q{i}" for i in range(states)]
    instance = Instance()
    instance.add("N", state_names[0])
    instance.add("F", state_names[-1])
    for _ in range(transitions):
        instance.add(
            "D",
            generator.choice(state_names),
            generator.choice(list(alphabet)),
            generator.choice(state_names),
        )
    instance.ensure_relation("R")
    for _ in range(words):
        instance.add("R", random_word(generator, alphabet, max_word_length))
    return instance


def random_event_log_instance(
    *,
    relation: str = "R",
    logs: int = 8,
    max_events: int = 8,
    seed: int = 0,
    compliance_rate: float = 0.6,
) -> Instance:
    """Process-mining event logs: each path is a trace of named events (Introduction)."""
    generator = random.Random(seed)
    filler_events = ["create_order", "ship", "invoice", "close_ticket"]
    instance = Instance()
    instance.ensure_relation(relation)
    for _ in range(logs):
        events: list[str] = []
        length = generator.randint(1, max_events)
        for _ in range(length):
            events.append(generator.choice(filler_events))
        if generator.random() < 0.8:
            position = generator.randint(0, len(events))
            events.insert(position, "complete_order")
            if generator.random() < compliance_rate:
                later = generator.randint(position + 1, len(events))
                events.insert(later, "receive_payment")
        instance.add(relation, Path(tuple(events)))
    return instance


def sales_instance(
    *,
    relation: str = "Sales",
    items: int = 4,
    years: int = 3,
    seed: int = 0,
) -> Instance:
    """The Introduction's Sales object as item·year·volume paths."""
    generator = random.Random(seed)
    instance = Instance()
    item_names = [f"item{i}" for i in range(items)]
    year_names = [f"y{2020 + i}" for i in range(years)]
    for item in item_names:
        for year in year_names:
            instance.add(relation, Path((item, year, str(generator.randint(1, 500)))))
    return instance


def random_positive_program(
    *,
    relation: str = "R",
    derived: int = 4,
    alphabet: Sequence[str] = ("a", "b"),
    seed: int = 0,
):
    """A random positive (negation-free) program over a unary EDB *relation*.

    The program defines a chain of IDB relations ``S0 … S{derived-1}`` plus
    an output relation ``S``; every rule draws its body predicates from the
    EDB and *strictly earlier* IDB relations, except for self-recursive rules
    that strip an atom from their own relation — so every program terminates
    on every instance.  Used by the property-based tests to check that all
    fixpoint strategies and execution modes agree on arbitrary programs.
    """
    from repro.parser.parser import parse_program

    generator = random.Random(seed)
    lines: list[str] = [f"S0($x) :- {relation}($x)."]
    for index in range(1, derived):
        head = f"S{index}"
        sources = [relation] + [f"S{j}" for j in range(index)]
        shape = generator.randrange(5)
        first = generator.choice(sources)
        letter = generator.choice(list(alphabet))
        if shape == 0:
            lines.append(f"{head}($x) :- {first}($x).")
        elif shape == 1:
            lines.append(f"{head}($x) :- {first}({letter}.$x).")
        elif shape == 2:
            lines.append(f"{head}($x) :- {first}($x.{letter}).")
        elif shape == 3:
            # Concatenate the EDB with an earlier IDB (keeps sizes bounded by
            # |EDB| per chain step, unlike squaring an IDB against itself).
            lines.append(f"{head}($x.$y) :- {relation}($x), {first}($y.{letter}).")
        else:
            # A shrinking self-recursion on top of a copied base relation.
            lines.append(f"{head}($x) :- {first}($x).")
            lines.append(f"{head}($x) :- {head}({letter}.$x).")
    lines.append(f"S($x) :- S{derived - 1}($x).")
    return parse_program("\n".join(lines))


def update_stream(
    instance: Instance,
    *,
    relation: str = "R",
    steps: int = 10,
    additions_per_step: int = 1,
    retractions_per_step: int = 1,
    seed: int = 0,
) -> Iterator[tuple[list[Fact], list[Fact]]]:
    """A deterministic stream of small per-step ``(additions, retractions)``.

    This is the serving-workload shape incremental maintenance targets: each
    step retracts facts that are *currently* present (tracking the stream's
    own prior effects, so a fact is never retracted twice) and adds fresh
    rows recombined position-wise from argument paths already seen in
    *relation* — e.g. new edges between existing nodes of a graph workload.
    Retractions are clamped so at least one row always survives (an emptied
    relation would starve the recombination pool), so a step may yield fewer
    retractions than *retractions_per_step* asks for.  The yielded facts are
    ready for :meth:`~repro.model.instance.Instance.begin_delta` or
    :meth:`~repro.engine.query.QuerySession.update`; the stream never
    mutates *instance* itself.
    """
    generator = random.Random(seed)
    live: list[tuple[Path, ...]] = sorted(instance.relation(relation), key=repr)
    live_set = set(live)
    pools: list[list[Path]] = []
    if live:
        arity = len(live[0])
        pools = [sorted({row[i] for row in live}, key=repr) for i in range(arity)]
    for _ in range(steps):
        retractions: list[Fact] = []
        for _ in range(min(retractions_per_step, max(len(live) - 1, 0))):
            row = live.pop(generator.randrange(len(live)))
            live_set.discard(row)
            retractions.append(Fact(relation, row))
        additions: list[Fact] = []
        for _ in range(additions_per_step):
            if not pools:
                break
            for _ in range(32):  # bounded attempts to find a fresh row
                row = tuple(generator.choice(pool) for pool in pools)
                if row not in live_set:
                    live.append(row)
                    live_set.add(row)
                    additions.append(Fact(relation, row))
                    break
        yield additions, retractions


def churn_stream(
    instance: Instance,
    *,
    relation: str = "R",
    steps: int = 10,
    retractions_per_step: int = 4,
    additions_per_step: int = 1,
    revival_rate: float = 0.5,
    seed: int = 0,
) -> Iterator[tuple[list[Fact], list[Fact]]]:
    """A deletion-heavy churn stream: retraction-dominated updates with revivals.

    The adversarial counterpart of :func:`update_stream`.  Each step retracts
    *retractions_per_step* currently-live rows and adds only
    *additions_per_step* back, so the instance *shrinks* over the stream and
    the maintenance layer spends its time on the deletion side — counting
    decrements crossing zero, delete–rederive overdeletion, and (through a
    negated relation) insertion seeds.  A fraction *revival_rate* of the
    additions resurrects a previously retracted row instead of recombining a
    fresh one: a revived fact must come back with correct support counts,
    which is exactly the state a maintenance bug corrupts first.  Like
    :func:`update_stream`, at least one row always survives and *instance*
    itself is never mutated.
    """
    generator = random.Random(seed)
    live: list[tuple[Path, ...]] = sorted(instance.relation(relation), key=repr)
    live_set = set(live)
    graveyard: list[tuple[Path, ...]] = []
    pools: list[list[Path]] = []
    if live:
        arity = len(live[0])
        pools = [sorted({row[i] for row in live}, key=repr) for i in range(arity)]
    for _ in range(steps):
        retractions: list[Fact] = []
        for _ in range(min(retractions_per_step, max(len(live) - 1, 0))):
            row = live.pop(generator.randrange(len(live)))
            live_set.discard(row)
            graveyard.append(row)
            retractions.append(Fact(relation, row))
        additions: list[Fact] = []
        for _ in range(additions_per_step):
            row = None
            if graveyard and generator.random() < revival_rate:
                row = graveyard.pop(generator.randrange(len(graveyard)))
                if row in live_set:
                    row = None
            if row is None and pools:
                for _ in range(32):  # bounded attempts to find a fresh row
                    candidate = tuple(generator.choice(pool) for pool in pools)
                    if candidate not in live_set:
                        row = candidate
                        break
            if row is None:
                continue
            live.append(row)
            live_set.add(row)
            additions.append(Fact(relation, row))
        yield additions, retractions


def low_overlap_goal_stream(
    instance: Instance,
    *,
    relation: str = "E",
    position: int = 0,
    goals: int = 24,
    seed: int = 0,
) -> list[Path]:
    """A goal stream with (near-)zero subsumption overlap, for tabling.

    The friendly tabling workload repeats a handful of hot sources, so the
    subgoal table wins on every repeat.  This stream is the hostile shape:
    it binds a *different* value each time, drawn (in deterministic shuffled
    order) from the distinct paths at argument *position* of *relation* —
    every goal is a cold table miss, the LRU bound churns, and subsumption
    never fires.  Only when *goals* exceeds the number of distinct values
    does the stream wrap around, and by then an LRU-bounded table has long
    evicted the first pass's entries.  Tabled serving must degrade to
    per-goal magic gracefully here, not collapse.
    """
    generator = random.Random(seed)
    values = sorted({row[position] for row in instance.relation(relation)}, key=repr)
    generator.shuffle(values)
    if not values:
        return []
    return [values[index % len(values)] for index in range(goals)]


def random_packed_instance(
    *,
    relation: str = "R",
    paths: int = 8,
    alphabet: Sequence[str] = ("a", "b"),
    max_length: int = 4,
    max_depth: int = 2,
    seed: int = 0,
) -> Instance:
    """A unary relation of paths that may contain nested packed values.

    Used by tests of the doubling / delimiter encoding; note that the
    baseline queries of the paper work on *flat* instances only.
    """
    generator = random.Random(seed)

    def build(depth: int) -> Path:
        values = []
        for _ in range(generator.randint(0, max_length)):
            if depth < max_depth and generator.random() < 0.3:
                values.append(Packed(build(depth + 1)))
            else:
                values.append(generator.choice(alphabet))
        return Path(tuple(values))

    instance = Instance()
    instance.ensure_relation(relation)
    for _ in range(paths):
        instance.add(relation, build(0))
    return instance
