"""Serialisation of instances, programs, and query/update results.

Programs already have a textual syntax (:mod:`repro.parser`); instances are
stored as lists of fact rules in the same syntax, so a database plus its
queries can live in plain, diff-able files.

On top of the textual format this module provides the JSON boundary codec
shared by the serving layer (:mod:`repro.service`) and its tests: paths are
encoded in the ground expression syntax (``a·b·⟨c⟩``, parseable back through
:func:`repro.parser.parse_expression`), facts as ``[relation, path, ...]``
lists, and :class:`~repro.engine.query.QueryResult` /
:class:`~repro.engine.query.UpdateResult` as plain dicts carrying the
answers, ``served_by`` / ``fallback_reason`` provenance, and the statistics
counters.  ``X == from_json(to_json(X))`` holds field-for-field for
everything the wire format carries (a decoded ``QueryResult`` shares its
``full_instance`` with its output: the wire format intentionally ships only
the answer slice, not the whole materialization).
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from functools import lru_cache
from pathlib import Path as FilePath
from typing import Iterable, Mapping

from repro.engine.fixpoint import EvaluationStatistics
from repro.engine.query import QueryResult, UpdateResult
from repro.errors import ParseError
from repro.model.instance import Fact, Instance
from repro.model.terms import Path
from repro.parser.parser import parse_expression, parse_rules
from repro.parser.unparser import format_path, unparse_instance, unparse_program
from repro.syntax.programs import Program

__all__ = [
    "instance_to_text",
    "instance_from_text",
    "save_instance",
    "load_instance",
    "save_program",
    "load_program",
    "path_to_text",
    "path_from_text",
    "fact_to_json",
    "fact_from_json",
    "rows_to_json",
    "rows_from_json",
    "statistics_to_json",
    "statistics_from_json",
    "query_result_to_json",
    "query_result_from_json",
    "update_result_to_json",
    "update_result_from_json",
]


def instance_to_text(instance: Instance) -> str:
    """Render an instance as fact rules, one per line, sorted."""
    return unparse_instance(instance)


def instance_from_text(text: str) -> Instance:
    """Parse an instance from fact-rule text (every rule must be a ground fact)."""
    instance = Instance()
    for rule in parse_rules(text):
        if rule.body or not rule.head.is_ground():
            raise ParseError(f"instance files may only contain ground facts, got {rule}")
        instance.add(
            rule.head.name,
            *(component.ground_path() for component in rule.head.components),
        )
    return instance


def save_instance(instance: Instance, path: "FilePath | str") -> None:
    """Write an instance to a file."""
    FilePath(path).write_text(instance_to_text(instance) + "\n", encoding="utf-8")


def load_instance(path: "FilePath | str") -> Instance:
    """Read an instance from a file."""
    return instance_from_text(FilePath(path).read_text(encoding="utf-8"))


def save_program(program: Program, path: "FilePath | str") -> None:
    """Write a program to a file in the textual syntax."""
    FilePath(path).write_text(unparse_program(program) + "\n", encoding="utf-8")


def load_program(path: "FilePath | str") -> Program:
    """Read a program from a file."""
    from repro.parser.parser import parse_program

    return parse_program(FilePath(path).read_text(encoding="utf-8"))


# -- JSON boundary codec (paths, facts, results) ---------------------------------------


def path_to_text(path: Path) -> str:
    """Render a concrete path in ground expression syntax (``ϵ`` when empty)."""
    return format_path(path)


@lru_cache(maxsize=1 << 16)
def path_from_text(text: str) -> Path:
    """Parse a path rendered by :func:`path_to_text` back into a :class:`Path`.

    Memoized: decoded documents (snapshots, WAL records, wire rows) repeat
    the same few node labels across thousands of rows, and paths are
    immutable values, so re-lexing each occurrence would dominate restore.
    """
    expression = parse_expression(text)
    if not expression.is_ground():
        raise ParseError(f"path text must be ground (no variables), got {text!r}")
    return expression.ground_path()


def fact_to_json(fact: Fact) -> list[str]:
    """Encode a fact as ``[relation, path, ...]`` (arity-0 facts are 1-lists)."""
    return [fact.relation, *(path_to_text(path) for path in fact.paths)]


def fact_from_json(data: "list[str]") -> Fact:
    """Decode a fact encoded by :func:`fact_to_json`."""
    if not isinstance(data, (list, tuple)) or not data:
        raise ParseError(f"a JSON fact is a non-empty [relation, path, ...] list, got {data!r}")
    relation, *paths = data
    return Fact(relation, tuple(path_from_text(text) for text in paths))


def rows_to_json(rows: "Iterable[tuple[Path, ...]]") -> list[list[str]]:
    """Encode relation rows as sorted lists of path texts (stable output)."""
    return sorted([path_to_text(path) for path in row] for row in rows)


def rows_from_json(data: "Iterable[Iterable[str]]") -> list[tuple[Path, ...]]:
    """Decode rows encoded by :func:`rows_to_json`."""
    return [tuple(path_from_text(text) for text in row) for row in data]


def statistics_to_json(statistics: EvaluationStatistics) -> dict:
    """Encode every counter field of an :class:`EvaluationStatistics`."""
    encoded: dict = {}
    for field in dataclass_fields(statistics):
        value = getattr(statistics, field.name)
        encoded[field.name] = list(value) if isinstance(value, list) else value
    return encoded


def statistics_from_json(data: "Mapping[str, object] | None") -> EvaluationStatistics:
    """Decode statistics, tolerating records written by older engine versions.

    Unknown fields are ignored and missing ones keep their defaults, so a
    service and a client built from different commits can still exchange
    results.
    """
    statistics = EvaluationStatistics()
    if not data:
        return statistics
    known = {field.name for field in dataclass_fields(statistics)}
    for name, value in data.items():
        if name in known:
            setattr(statistics, name, list(value) if isinstance(value, list) else value)
    return statistics


def _answers_to_json(instance: Instance) -> dict[str, list[list[str]]]:
    return {
        name: rows_to_json(instance.relation(name))
        for name in sorted(instance.relation_names)
    }


def _answers_from_json(data: "Mapping[str, object]") -> Instance:
    instance = Instance()
    for name, rows in data.items():
        instance.ensure_relation(name)
        instance.set_relation_rows(name, rows_from_json(rows))
    return instance


def query_result_to_json(result: QueryResult) -> dict:
    """Encode a :class:`QueryResult` for the service boundary.

    The wire format carries the *answers* (the output sub-instance), not the
    full materialization backing them — results served from a session's
    materialization share that instance, and shipping it per query would
    defeat the serving layer.
    """
    return {
        "kind": "query_result",
        "answers": _answers_to_json(result.output),
        "output_relation": result.output_relation,
        "binding": (
            None
            if result.binding is None
            else {str(position): path_to_text(value) for position, value in result.binding.items()}
        ),
        "mode": result.mode,
        "served_by": result.served_by,
        "fallback_reason": result.fallback_reason,
        "statistics": statistics_to_json(result.statistics),
    }


def query_result_from_json(data: "Mapping[str, object]") -> QueryResult:
    """Decode a :class:`QueryResult` encoded by :func:`query_result_to_json`."""
    answers = _answers_from_json(data.get("answers", {}))
    binding = data.get("binding")
    return QueryResult(
        output=answers,
        full_instance=answers,
        statistics=statistics_from_json(data.get("statistics")),
        output_relation=data.get("output_relation"),
        binding=(
            None
            if binding is None
            else {int(position): path_from_text(text) for position, text in binding.items()}
        ),
        mode=data.get("mode", "full"),
        fallback_reason=data.get("fallback_reason"),
        served_by=data.get("served_by", "full"),
    )


def update_result_to_json(result: UpdateResult) -> dict:
    """Encode an :class:`UpdateResult` for the service boundary."""
    return {
        "kind": "update_result",
        "added": sorted(fact_to_json(fact) for fact in result.added),
        "removed": sorted(fact_to_json(fact) for fact in result.removed),
        "maintained": result.maintained,
        "fallback_reason": result.fallback_reason,
        "statistics": statistics_to_json(result.statistics),
        "shards_touched": (
            None if result.shards_touched is None else sorted(result.shards_touched)
        ),
    }


def update_result_from_json(data: "Mapping[str, object]") -> UpdateResult:
    """Decode an :class:`UpdateResult` encoded by :func:`update_result_to_json`."""
    shards = data.get("shards_touched")
    return UpdateResult(
        added=frozenset(fact_from_json(fact) for fact in data.get("added", ())),
        removed=frozenset(fact_from_json(fact) for fact in data.get("removed", ())),
        maintained=bool(data.get("maintained", False)),
        fallback_reason=data.get("fallback_reason"),
        statistics=statistics_from_json(data.get("statistics")),
        shards_touched=None if shards is None else frozenset(int(shard) for shard in shards),
    )
