"""Serialisation of instances and programs to text files.

Programs already have a textual syntax (:mod:`repro.parser`); instances are
stored as lists of fact rules in the same syntax, so a database plus its
queries can live in plain, diff-able files.
"""

from __future__ import annotations

from pathlib import Path as FilePath

from repro.errors import ParseError
from repro.model.instance import Instance
from repro.parser.parser import parse_rules
from repro.parser.unparser import unparse_instance, unparse_program
from repro.syntax.programs import Program

__all__ = [
    "instance_to_text",
    "instance_from_text",
    "save_instance",
    "load_instance",
    "save_program",
    "load_program",
]


def instance_to_text(instance: Instance) -> str:
    """Render an instance as fact rules, one per line, sorted."""
    return unparse_instance(instance)


def instance_from_text(text: str) -> Instance:
    """Parse an instance from fact-rule text (every rule must be a ground fact)."""
    instance = Instance()
    for rule in parse_rules(text):
        if rule.body or not rule.head.is_ground():
            raise ParseError(f"instance files may only contain ground facts, got {rule}")
        instance.add(
            rule.head.name,
            *(component.ground_path() for component in rule.head.components),
        )
    return instance


def save_instance(instance: Instance, path: "FilePath | str") -> None:
    """Write an instance to a file."""
    FilePath(path).write_text(instance_to_text(instance) + "\n", encoding="utf-8")


def load_instance(path: "FilePath | str") -> Instance:
    """Read an instance from a file."""
    return instance_from_text(FilePath(path).read_text(encoding="utf-8"))


def save_program(program: Program, path: "FilePath | str") -> None:
    """Write a program to a file in the textual syntax."""
    FilePath(path).write_text(unparse_program(program) + "\n", encoding="utf-8")


def load_program(path: "FilePath | str") -> Program:
    """Read a program from a file."""
    from repro.parser.parser import parse_program

    return parse_program(FilePath(path).read_text(encoding="utf-8"))
