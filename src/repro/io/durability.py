"""Durability: write-ahead logging, versioned snapshots, and crash recovery.

A served session (:mod:`repro.service.core`) that dies today loses its
materialization, its answer tables, and its committed generation — everything
has to be recomputed from the uploaded program and instance.  This module
makes the session state *durable* with the classic two-file scheme:

* **Write-ahead log** (:class:`WriteAheadLog`) — an append-only file of
  length+CRC32-framed JSON records, one per committed maintenance pass (the
  *merged* batch the flusher handed to :meth:`QuerySession.update`, plus the
  generation it committed).  Appends are fsynced **before** the pass is
  acknowledged to any client, so the log always contains every acked batch.
  Opening a log for append scans the valid prefix and truncates a torn tail
  (a frame cut short by a crash mid-write) — a half-written record was by
  construction never acked, so dropping it is exactly right.

* **Versioned snapshots** — the full session state
  (:meth:`QuerySession.export_state`: materialization rows, stratum support
  state, answer-table entries, sharding plan) plus the session config,
  wrapped in a ``{format, version, generation, config, state}`` document and
  written atomically (temp file → fsync → ``os.replace``).  A snapshot at
  generation *g* makes every log record ``≤ g`` redundant; writing one
  rotates the log (*snapshot-then-truncate compaction*), triggered by log
  size (:meth:`SessionDurability.should_snapshot`).

* **Recovery** (:meth:`SessionDurability.recover`) — load the newest
  *loadable* snapshot, then replay the contiguous log tail past its
  generation.  A snapshot that parses but declares an unknown format or
  version raises :class:`~repro.errors.SnapshotUnsupportedError` loudly
  (falling back would silently resurrect stale state); only a snapshot that
  is actually *corrupt* (unreadable JSON) falls back to the previous one —
  which is why compaction keeps the last two snapshots and every log file
  their tails need.  The tail is collected across *all* log files and
  required to be contiguous from the snapshot's generation, so recovery is
  correct under every compaction crash interleaving without depending on
  the pruning deletions having completed.

* **Warm standby** (:class:`LogTailer`) — a second process (or registry)
  points at the same directory, restores the snapshot, and *tails* the log:
  :meth:`LogTailer.poll` incrementally reads newly fsynced records (per-file
  offset, tolerating a torn tail by simply not advancing past it, following
  the primary's log rotations) so the standby can apply them through its own
  maintenance path and serve stale-bounded reads — promotable by re-opening
  the log for append once the primary is known dead.  The scheme assumes a
  single writer per directory; nothing here arbitrates two live primaries.

Every filesystem mutation goes through an injectable :class:`FileSystemShim`
(``write``/``fsync``/``replace``), which is the seam the fault-injection
harness (``tests/io/test_crash_recovery.py``) uses to kill the write path at
every interesting point and assert recovery lands on an acked-prefix state.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import IO, Iterable, Mapping

from repro.engine.reasons import SNAPSHOT_UNSUPPORTED, reason
from repro.errors import SequenceDatalogError, SnapshotUnsupportedError
from repro.io.serialization import fact_from_json, fact_to_json
from repro.model.instance import Fact

__all__ = [
    "FileSystemShim",
    "LogTailer",
    "RecoveredState",
    "SessionDurability",
    "WriteAheadLog",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]

#: The snapshot document's container identity and version.  ``format`` guards
#: against loading a foreign JSON file as a snapshot; ``version`` is the
#: forward-compatibility handshake — a build refuses versions it does not
#: know with :class:`SnapshotUnsupportedError` instead of guessing.
SNAPSHOT_FORMAT = "repro-session-snapshot"
SNAPSHOT_VERSION = 1
SUPPORTED_SNAPSHOT_VERSIONS = frozenset({1})

#: Log frame header: payload length + CRC-32 of the payload, little-endian.
_FRAME = struct.Struct("<II")

#: Default compaction trigger: snapshot once the live log grows past this.
DEFAULT_SNAPSHOT_WAL_BYTES = 1 << 20

#: How many snapshots compaction keeps.  Two, not one: recovery falls back to
#: the previous snapshot when the newest is unreadable, and the log files its
#: tail needs are retained alongside it.
KEEP_SNAPSHOTS = 2


class FileSystemShim:
    """The injectable seam between durability and the filesystem.

    Production uses this default implementation; the fault-injection tests
    substitute a shim that crashes (optionally mid-write, leaving a torn
    frame) at a scripted operation index.  Only the three operations whose
    ordering carries the durability argument go through the shim — buffered
    writes, fsync barriers, and atomic renames.
    """

    def write(self, handle: "IO[bytes]", data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle: "IO[bytes]") -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, source: "Path | str", target: "Path | str") -> None:
        os.replace(source, target)


def _scan_frames(data: bytes) -> "tuple[list[dict], int]":
    """Parse the valid record prefix of raw log bytes.

    Returns ``(records, valid_length)``: everything after ``valid_length``
    is a torn or garbage tail (short header, short payload, CRC mismatch,
    or unparseable JSON) and must be truncated before appending resumes.
    """
    records: "list[dict]" = []
    offset = 0
    total = len(data)
    while offset + _FRAME.size <= total:
        length, checksum = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break
        try:
            record = json.loads(payload)
        except ValueError:
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


class WriteAheadLog:
    """One append-only, checksummed, fsync-on-commit log file.

    Opening scans the existing file and truncates its torn tail, so a log
    that survived a crash mid-append is immediately appendable again.  Pass
    ``truncate=True`` to start empty (log rotation), and ``fsync=False`` to
    trade the per-commit barrier away (testing only — without the barrier
    an acked batch can be lost, which is the whole point of the log).
    """

    def __init__(
        self,
        path: "Path | str",
        *,
        shim: "FileSystemShim | None" = None,
        fsync: bool = True,
        truncate: bool = False,
    ):
        self.path = Path(path)
        self.shim = shim if shim is not None else FileSystemShim()
        self._fsync = fsync
        self.last_generation: "int | None" = None
        if truncate or not self.path.exists():
            self._handle: "IO[bytes]" = open(self.path, "wb")
            self.size = 0
        else:
            records, valid = _scan_frames(self.path.read_bytes())
            self._handle = open(self.path, "r+b")
            self._handle.seek(valid)
            self._handle.truncate(valid)
            self.size = valid
            if records:
                self.last_generation = int(records[-1]["generation"])

    def append(self, record: "Mapping[str, object]", *, sync: bool = True) -> None:
        """Frame, write, and (by default) fsync one record.

        The caller must not acknowledge the corresponding commit before the
        record's fsync barrier: that is what makes "acked" imply "durable".
        With ``sync=False`` the barrier is deferred — group commit: appends
        to the same file are ordered, so one later :meth:`sync` (or a synced
        append) flushes every deferred record at once.
        """
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self.shim.write(self._handle, frame)
        if sync and self._fsync:
            self.shim.fsync(self._handle)
        else:
            self._handle.flush()
        self.size += len(frame)
        generation = record.get("generation")
        if generation is not None:
            self.last_generation = int(generation)  # type: ignore[arg-type]

    def sync(self) -> None:
        """The fsync barrier for every record appended so far."""
        self._handle.flush()
        if self._fsync:
            self.shim.fsync(self._handle)

    @staticmethod
    def read(path: "Path | str") -> "list[dict]":
        """All valid records of a log file, tolerating a torn tail."""
        file_path = Path(path)
        if not file_path.exists():
            return []
        records, _valid = _scan_frames(file_path.read_bytes())
        return records

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def write_snapshot(
    path: "Path | str", document: "Mapping[str, object]", *, shim: "FileSystemShim | None" = None
) -> None:
    """Atomically persist a snapshot document (temp → fsync → replace).

    A reader never observes a half-written snapshot: either the rename
    happened (the file is complete and fsynced) or it did not (the old file,
    if any, is untouched and only a ``.tmp`` leftover remains).
    """
    shim = shim if shim is not None else FileSystemShim()
    target = Path(path)
    temp = target.with_name(target.name + ".tmp")
    payload = json.dumps(document, separators=(",", ":"), sort_keys=True).encode("utf-8")
    with open(temp, "wb") as handle:
        shim.write(handle, payload)
        shim.fsync(handle)
    shim.replace(temp, target)


def load_snapshot(path: "Path | str") -> dict:
    """Load and handshake one snapshot document.

    Raises :class:`SnapshotUnsupportedError` for a document that *parses*
    but declares an unknown format or version — the forward-compatibility
    contract — and :class:`ValueError` for one that does not parse at all
    (corruption; the caller may fall back to an older snapshot).
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict):
        raise ValueError(f"snapshot {path} does not hold a JSON object")
    declared_format = document.get("format")
    version = document.get("version")
    if declared_format != SNAPSHOT_FORMAT or version not in SUPPORTED_SNAPSHOT_VERSIONS:
        raise SnapshotUnsupportedError(
            reason(
                SNAPSHOT_UNSUPPORTED,
                f"snapshot {Path(path).name} declares format {declared_format!r} "
                f"version {version!r}; this build reads {SNAPSHOT_FORMAT!r} versions "
                f"{sorted(SUPPORTED_SNAPSHOT_VERSIONS)} — refusing to guess",
            )
        )
    return document


def _generation_of(path: Path, prefix: str) -> "int | None":
    stem = path.name
    if not stem.startswith(prefix):
        return None
    body = stem[len(prefix) :].split(".", 1)[0]
    try:
        return int(body)
    except ValueError:
        return None


class RecoveredState:
    """What :meth:`SessionDurability.recover` found on disk.

    ``config`` and ``state`` come from the loaded snapshot (taken at
    ``generation``); ``tail`` is the contiguous list of log records with
    generations ``generation+1 …`` that must be replayed through the normal
    maintenance path to reach the durable frontier.
    """

    __slots__ = ("config", "state", "generation", "tail")

    def __init__(self, config: dict, state: dict, generation: int, tail: "list[dict]"):
        self.config = config
        self.state = state
        self.generation = generation
        self.tail = tail

    def __repr__(self) -> str:
        return (
            f"RecoveredState(generation={self.generation}, "
            f"tail={len(self.tail)} records)"
        )


def encode_commit(
    generation: int,
    additions: "Iterable[Fact]",
    retractions: "Iterable[Fact]",
    batches: int,
) -> dict:
    """The log record for one committed (merged) maintenance pass."""
    return {
        "generation": generation,
        "additions": [fact_to_json(fact) for fact in additions],
        "retractions": [fact_to_json(fact) for fact in retractions],
        "batches": batches,
    }


def decode_commit(record: "Mapping[str, object]") -> "tuple[int, list[Fact], list[Fact], int]":
    """Decode a record written by :func:`encode_commit`."""
    return (
        int(record["generation"]),  # type: ignore[arg-type]
        [fact_from_json(fact) for fact in record.get("additions", ())],  # type: ignore[union-attr]
        [fact_from_json(fact) for fact in record.get("retractions", ())],  # type: ignore[union-attr]
        int(record.get("batches", 1)),  # type: ignore[arg-type]
    )


class SessionDurability:
    """One session's durable directory: ``snapshot-<gen>.json`` + ``wal-<gen>.log``.

    The log file is named by the snapshot generation it extends, so the pair
    a recovery needs is self-describing.  Construction only binds the
    directory; the three entry modes are explicit:

    * :meth:`initialize` — fresh session: write the initial snapshot and
      open a fresh log (the primary's create path);
    * :meth:`recover` + :meth:`open_for_append` — restart: load state, then
      resume logging where the previous primary stopped;
    * :meth:`recover` alone — warm standby: load state and tail the log
      with a :class:`LogTailer` instead of opening it for append.
    """

    def __init__(
        self,
        directory: "Path | str",
        *,
        fsync: bool = True,
        snapshot_wal_bytes: int = DEFAULT_SNAPSHOT_WAL_BYTES,
        shim: "FileSystemShim | None" = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shim = shim if shim is not None else FileSystemShim()
        self.fsync = fsync
        self.snapshot_wal_bytes = snapshot_wal_bytes
        self._wal: "WriteAheadLog | None" = None
        #: Counters surfaced by the service stats endpoint.
        self.snapshots_written = 0
        self.records_logged = 0

    # -- directory layout ---------------------------------------------------------------

    def snapshot_paths(self) -> "list[tuple[int, Path]]":
        """``(generation, path)`` of every snapshot file, ascending."""
        found = []
        for path in self.directory.glob("snapshot-*.json"):
            generation = _generation_of(path, "snapshot-")
            if generation is not None:
                found.append((generation, path))
        return sorted(found)

    def wal_paths(self) -> "list[tuple[int, Path]]":
        """``(base generation, path)`` of every log file, ascending."""
        found = []
        for path in self.directory.glob("wal-*.log"):
            generation = _generation_of(path, "wal-")
            if generation is not None:
                found.append((generation, path))
        return sorted(found)

    @property
    def wal_bytes(self) -> int:
        return self._wal.size if self._wal is not None else 0

    # -- primary side -------------------------------------------------------------------

    def initialize(self, config: dict, state: dict, generation: int = 0) -> None:
        """Persist a fresh session: initial snapshot + empty log."""
        self._write_snapshot(config, state, generation)

    def log_commit(
        self,
        generation: int,
        additions: "Iterable[Fact]",
        retractions: "Iterable[Fact]",
        batches: int,
        *,
        sync: bool = True,
    ) -> None:
        """Append one committed pass; by default returns only after the
        fsync barrier.  With ``sync=False`` the barrier is deferred to a
        later :meth:`sync` — group commit: the caller must withhold the
        pass's acknowledgement until that barrier."""
        if self._wal is None:
            raise SequenceDatalogError(
                "the write-ahead log is not open for append (initialize, or "
                "recover + open_for_append, first)"
            )
        self._wal.append(encode_commit(generation, additions, retractions, batches), sync=sync)
        self.records_logged += 1

    def sync(self) -> None:
        """The fsync barrier for every deferred :meth:`log_commit` so far.

        A no-op when the log is closed (e.g. a snapshot rotated it away
        after the deferred appends: the snapshot's own atomic write is then
        the durability barrier for everything it covers).
        """
        if self._wal is not None:
            self._wal.sync()

    def should_snapshot(self) -> bool:
        """Whether the live log has grown past the compaction trigger."""
        return self._wal is not None and self._wal.size >= self.snapshot_wal_bytes

    def snapshot(self, config: dict, state: dict, generation: int) -> None:
        """Snapshot-then-truncate compaction: persist state, rotate the log.

        Ordering is the correctness argument: the new snapshot lands
        atomically *first*, then the log rotates, then old files are pruned
        best-effort.  A crash anywhere in between leaves either the old
        snapshot+log pair intact or the new pair recoverable — recovery
        filters records by generation across all log files, so a surviving
        stale log never resurrects pre-snapshot state.
        """
        self._write_snapshot(config, state, generation)

    def _write_snapshot(self, config: dict, state: dict, generation: int) -> None:
        document = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "generation": generation,
            "config": dict(config),
            "state": state,
        }
        write_snapshot(
            self.directory / f"snapshot-{generation:012d}.json", document, shim=self.shim
        )
        if self._wal is not None:
            self._wal.close()
        self._wal = WriteAheadLog(
            self.directory / f"wal-{generation:012d}.log",
            shim=self.shim,
            fsync=self.fsync,
            truncate=True,
        )
        self.snapshots_written += 1
        self._prune()

    def _prune(self) -> None:
        """Best-effort deletion of snapshots/logs no recovery can need.

        Keeps the last :data:`KEEP_SNAPSHOTS` snapshots and every log file
        whose records any kept snapshot's tail could still want.  Deletion
        failures are ignored — a leftover file only wastes disk; recovery
        filters by generation and never trusts pruning to have run.
        """
        snapshots = self.snapshot_paths()
        kept = snapshots[-KEEP_SNAPSHOTS:]
        oldest_kept = kept[0][0] if kept else 0
        doomed = [path for generation, path in snapshots[:-KEEP_SNAPSHOTS]]
        doomed += [path for generation, path in self.wal_paths() if generation < oldest_kept]
        doomed += list(self.directory.glob("*.tmp"))
        for path in doomed:
            try:
                path.unlink()
            except OSError:
                pass

    # -- recovery -----------------------------------------------------------------------

    def recover(self) -> "RecoveredState | None":
        """Load the newest loadable snapshot plus its contiguous log tail.

        ``None`` when the directory holds no snapshot at all (nothing was
        ever initialized — a crash before the first snapshot completed
        leaves at most a ``.tmp``, and no batch can have been acked).
        Unknown-version snapshots raise :class:`SnapshotUnsupportedError`
        (see :func:`load_snapshot`); corrupt ones fall back to the previous
        snapshot, and a directory whose every snapshot is corrupt raises a
        plain :class:`SequenceDatalogError` naming the files.
        """
        snapshots = self.snapshot_paths()
        if not snapshots:
            return None
        document = None
        generation = 0
        corrupt: "list[str]" = []
        for snap_generation, path in reversed(snapshots):
            try:
                document = load_snapshot(path)
            except ValueError:
                corrupt.append(path.name)
                continue
            generation = snap_generation
            break
        if document is None:
            raise SequenceDatalogError(
                f"no loadable snapshot in {self.directory}: "
                f"{', '.join(corrupt)} are corrupt"
            )
        tail = self._tail_after(generation)
        return RecoveredState(
            dict(document.get("config", {})),
            dict(document.get("state", {})),
            generation,
            tail,
        )

    def _tail_after(self, generation: int) -> "list[dict]":
        """Records past *generation*, collected across all logs, contiguous.

        Pruning may or may not have run; duplicate generations (impossible
        under single-writer, defended anyway) keep the first occurrence.
        """
        records: "dict[int, dict]" = {}
        for _base, path in self.wal_paths():
            for record in WriteAheadLog.read(path):
                record_generation = int(record.get("generation", -1))
                if record_generation > generation:
                    records.setdefault(record_generation, record)
        tail: "list[dict]" = []
        expected = generation + 1
        while expected in records:
            tail.append(records[expected])
            expected += 1
        return tail

    def open_for_append(self) -> None:
        """Resume logging after :meth:`recover` (restart or promotion).

        Attaches to the newest log file — truncating its torn tail — or
        creates one at the newest snapshot's generation when the rotation
        crashed between snapshot and log creation.
        """
        if self._wal is not None:
            return
        wals = self.wal_paths()
        if wals:
            path = wals[-1][1]
        else:
            snapshots = self.snapshot_paths()
            base = snapshots[-1][0] if snapshots else 0
            path = self.directory / f"wal-{base:012d}.log"
        self._wal = WriteAheadLog(path, shim=self.shim, fsync=self.fsync)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


class LogTailer:
    """Incremental reader of a primary's log directory, for warm standbys.

    Tracks a per-file byte offset, so each :meth:`poll` reads only newly
    appended bytes; a torn tail (the primary mid-append) simply does not
    advance the offset and is retried next poll.  Log rotations (the primary
    compacted) are followed once every record of the current file has been
    applied.  Records are returned strictly in generation order, contiguous
    from the construction-time ``generation`` — the standby applies them
    through its normal maintenance path.
    """

    def __init__(self, directory: "Path | str", *, generation: int = 0):
        self.directory = Path(directory)
        #: The last generation handed out; the next record must be +1.
        self.generation = generation
        self._base: "int | None" = None
        self._offset = 0

    def _wal_files(self) -> "list[tuple[int, Path]]":
        found = []
        for path in self.directory.glob("wal-*.log"):
            base = _generation_of(path, "wal-")
            if base is not None:
                found.append((base, path))
        return sorted(found)

    def poll(self) -> "list[dict]":
        """Every newly durable record since the last poll, in order."""
        applied: "list[dict]" = []
        while True:
            files = self._wal_files()
            if not files:
                return applied
            by_base = dict(files)
            if self._base is None or self._base not in by_base:
                candidates = [base for base, _path in files if base <= self.generation]
                self._base = max(candidates) if candidates else files[0][0]
                self._offset = 0
            data = by_base[self._base].read_bytes()[self._offset :]
            records, valid = _scan_frames(data)
            self._offset += valid
            progressed = False
            for record in records:
                record_generation = int(record.get("generation", -1))
                if record_generation <= self.generation:
                    continue
                if record_generation != self.generation + 1:
                    return applied  # a gap: wait for the missing record
                applied.append(record)
                self.generation = record_generation
                progressed = True
            # Follow a rotation once the current file is drained: a newer
            # file whose base we have already reached is the continuation.
            switched = False
            for base, _path in files:
                if base > self._base and base <= self.generation:
                    self._base = base
                    self._offset = 0
                    switched = True
            if not progressed and not switched:
                return applied
