"""Plain-text persistence for instances and programs, the JSON boundary
codec shared by the serving layer and its tests, and the durability layer
(write-ahead log + versioned snapshots, :mod:`repro.io.durability`)."""

from repro.io.durability import (
    FileSystemShim,
    LogTailer,
    RecoveredState,
    SessionDurability,
    WriteAheadLog,
)
from repro.io.serialization import (
    fact_from_json,
    fact_to_json,
    instance_from_text,
    instance_to_text,
    load_instance,
    load_program,
    path_from_text,
    path_to_text,
    query_result_from_json,
    query_result_to_json,
    rows_from_json,
    rows_to_json,
    save_instance,
    save_program,
    statistics_from_json,
    statistics_to_json,
    update_result_from_json,
    update_result_to_json,
)

__all__ = [
    "FileSystemShim",
    "LogTailer",
    "RecoveredState",
    "SessionDurability",
    "WriteAheadLog",
    "fact_from_json",
    "fact_to_json",
    "instance_from_text",
    "instance_to_text",
    "load_instance",
    "load_program",
    "path_from_text",
    "path_to_text",
    "query_result_from_json",
    "query_result_to_json",
    "rows_from_json",
    "rows_to_json",
    "save_instance",
    "save_program",
    "statistics_from_json",
    "statistics_to_json",
    "update_result_from_json",
    "update_result_to_json",
]
