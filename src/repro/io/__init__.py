"""Plain-text persistence for instances and programs."""

from repro.io.serialization import (
    instance_from_text,
    instance_to_text,
    load_instance,
    load_program,
    save_instance,
    save_program,
)

__all__ = [
    "instance_from_text",
    "instance_to_text",
    "load_instance",
    "load_program",
    "save_instance",
    "save_program",
]
