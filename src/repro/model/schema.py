"""Schemas: finite sets of relation names with associated arities (Section 2.1)."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import ModelError

__all__ = ["Schema"]


def _validate_relation_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise ModelError(f"relation names must be non-empty strings, got {name!r}")
    return name


def _validate_arity(name: str, arity: int) -> int:
    if not isinstance(arity, int) or arity < 0:
        raise ModelError(f"arity of relation {name!r} must be a non-negative integer, got {arity!r}")
    return arity


class Schema(Mapping[str, int]):
    """A finite mapping from relation names to arities.

    A schema is *monadic* when every relation has arity zero or one; the
    baseline queries of Section 3.1 are defined over monadic schemas.
    """

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        items = dict(arities)
        self._arities = {
            _validate_relation_name(name): _validate_arity(name, arity)
            for name, arity in items.items()
        }

    # -- mapping protocol -------------------------------------------------------

    def __getitem__(self, name: str) -> int:
        return self._arities[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._arities)

    def __len__(self) -> int:
        return len(self._arities)

    def __contains__(self, name: object) -> bool:
        return name in self._arities

    # -- convenience ------------------------------------------------------------

    @property
    def relation_names(self) -> frozenset[str]:
        """The set of relation names in this schema."""
        return frozenset(self._arities)

    def arity(self, name: str) -> int:
        """Return the arity of *name*, raising :class:`ModelError` if unknown."""
        try:
            return self._arities[name]
        except KeyError:
            raise ModelError(f"relation {name!r} is not part of this schema") from None

    def is_monadic(self) -> bool:
        """Return ``True`` if every relation has arity zero or one."""
        return all(arity <= 1 for arity in self._arities.values())

    def extended(self, other: "Schema | Mapping[str, int]") -> "Schema":
        """Return a new schema that adds *other*'s relations to this one.

        Conflicting arities for the same name raise :class:`ModelError`.
        """
        merged = dict(self._arities)
        for name, arity in dict(other).items():
            if name in merged and merged[name] != arity:
                raise ModelError(
                    f"relation {name!r} has conflicting arities {merged[name]} and {arity}"
                )
            merged[name] = arity
        return Schema(merged)

    def restricted(self, names: Iterable[str]) -> "Schema":
        """Return the sub-schema containing only *names* (which must exist)."""
        return Schema({name: self.arity(name) for name in names})

    # -- equality and representation ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._arities == other._arities

    def __hash__(self) -> int:
        return hash(frozenset(self._arities.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}/{arity}" for name, arity in sorted(self._arities.items()))
        return f"Schema({{{inner}}})"
