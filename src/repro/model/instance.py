"""Facts and instances (Section 2.1 and 2.3).

An *instance* of a schema assigns to each relation name a finite relation on
paths.  Equivalently (and this is the view used by the semantics in Section
2.3), an instance is a finite set of *facts* ``R(p1, ..., pn)`` where each
``pi`` is a path.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import ModelError
from repro.model.schema import Schema
from repro.model.terms import Path, Value, as_path

__all__ = ["Fact", "Instance"]


class Fact:
    """A fact ``R(p1, ..., pn)``: a relation name applied to a tuple of paths."""

    __slots__ = ("_relation", "_paths", "_hash")

    def __init__(self, relation: str, paths: Iterable["Path | Value"] = ()):
        if not isinstance(relation, str) or not relation:
            raise ModelError(f"relation names must be non-empty strings, got {relation!r}")
        self._relation = relation
        self._paths = tuple(as_path(path) for path in paths)
        self._hash = hash((relation, self._paths))

    @property
    def relation(self) -> str:
        """The relation name of this fact."""
        return self._relation

    @property
    def paths(self) -> tuple[Path, ...]:
        """The argument paths of this fact."""
        return self._paths

    @property
    def arity(self) -> int:
        """The number of arguments of this fact."""
        return len(self._paths)

    def is_flat(self) -> bool:
        """Return ``True`` if none of the argument paths contains packing."""
        return all(path.is_flat() for path in self._paths)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fact)
            and self._relation == other._relation
            and self._paths == other._paths
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Fact({self._relation!r}, {list(self._paths)!r})"

    def __str__(self) -> str:
        if not self._paths:
            return self._relation
        return f"{self._relation}({', '.join(str(path) for path in self._paths)})"


class Instance:
    """A finite set of facts, organised per relation name.

    The class behaves like a mutable database: facts can be added and the
    relations inspected.  Equality is extensional (same set of facts).
    """

    __slots__ = ("_relations",)

    def __init__(self, facts: "Iterable[Fact] | Mapping[str, Iterable[tuple]] | None" = None):
        self._relations: dict[str, set[tuple[Path, ...]]] = {}
        if facts is None:
            return
        if isinstance(facts, Mapping):
            for relation, tuples in facts.items():
                for row in tuples:
                    self.add(relation, *_as_row(row))
        else:
            for fact in facts:
                self.add_fact(fact)

    # -- construction -------------------------------------------------------------

    @staticmethod
    def from_paths(relation: str, paths: Iterable["Path | Value"]) -> "Instance":
        """Build a unary instance holding *paths* in relation *relation*."""
        instance = Instance()
        for path in paths:
            instance.add(relation, path)
        return instance

    def add_fact(self, fact: Fact) -> None:
        """Insert *fact* into the instance (idempotent)."""
        self._check_arity(fact.relation, fact.arity)
        self._relations.setdefault(fact.relation, set()).add(fact.paths)

    def add(self, relation: str, *paths: "Path | Value") -> None:
        """Insert the fact ``relation(paths...)`` into the instance."""
        self.add_fact(Fact(relation, paths))

    def discard_fact(self, fact: Fact) -> None:
        """Remove *fact* if present."""
        rows = self._relations.get(fact.relation)
        if rows is not None:
            rows.discard(fact.paths)
            if not rows:
                del self._relations[fact.relation]

    def ensure_relation(self, relation: str) -> None:
        """Make *relation* present (possibly empty) in this instance."""
        self._relations.setdefault(relation, set())

    def _check_arity(self, relation: str, arity: int) -> None:
        rows = self._relations.get(relation)
        if rows:
            existing = len(next(iter(rows)))
            if existing != arity:
                raise ModelError(
                    f"relation {relation!r} already holds tuples of arity {existing}; "
                    f"cannot add a tuple of arity {arity}"
                )

    # -- access --------------------------------------------------------------------

    @property
    def relation_names(self) -> frozenset[str]:
        """The relation names that occur in this instance."""
        return frozenset(self._relations)

    def relation(self, name: str) -> frozenset[tuple[Path, ...]]:
        """Return the set of tuples stored for relation *name* (empty if absent)."""
        return frozenset(self._relations.get(name, frozenset()))

    def paths(self, name: str) -> frozenset[Path]:
        """Return the set of paths of a unary (or nullary) relation *name*."""
        rows = self._relations.get(name, set())
        result = set()
        for row in rows:
            if len(row) != 1:
                raise ModelError(f"relation {name!r} is not unary")
            result.add(row[0])
        return frozenset(result)

    def contains(self, relation: str, *paths: "Path | Value") -> bool:
        """Return ``True`` if the fact ``relation(paths...)`` is in the instance."""
        row = tuple(as_path(path) for path in paths)
        return row in self._relations.get(relation, set())

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts in the instance."""
        for relation, rows in self._relations.items():
            for row in rows:
                yield Fact(relation, row)

    def arity_of(self, relation: str) -> int | None:
        """Return the arity of *relation* in this instance, or ``None`` if empty."""
        rows = self._relations.get(relation)
        if not rows:
            return None
        return len(next(iter(rows)))

    def fact_count(self) -> int:
        """Return the total number of facts."""
        return sum(len(rows) for rows in self._relations.values())

    def __len__(self) -> int:
        return self.fact_count()

    def __bool__(self) -> bool:
        return any(self._relations.values())

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        return fact.paths in self._relations.get(fact.relation, set())

    # -- predicates -------------------------------------------------------------------

    def is_flat(self) -> bool:
        """Return ``True`` if no packed value occurs anywhere in the instance."""
        return all(fact.is_flat() for fact in self.facts())

    def is_classical(self) -> bool:
        """Return ``True`` if every argument path is a single atomic value."""
        return all(
            path.is_atomic() for fact in self.facts() for path in fact.paths
        )

    def schema(self) -> Schema:
        """Return the schema induced by this instance (arities of present relations)."""
        arities = {}
        for relation, rows in self._relations.items():
            arities[relation] = len(next(iter(rows))) if rows else 0
        return Schema(arities)

    def max_path_length(self) -> int:
        """Return the maximal length of a path in the instance (0 if empty)."""
        return max((len(path) for fact in self.facts() for path in fact.paths), default=0)

    def atoms(self) -> frozenset[str]:
        """Return all atomic values occurring (at any depth) in the instance."""
        found: set[str] = set()
        for fact in self.facts():
            for path in fact.paths:
                found.update(path.atoms())
        return frozenset(found)

    # -- algebraic combinations ---------------------------------------------------------

    def copy(self) -> "Instance":
        """Return a deep-enough copy (facts are immutable, so sets are copied)."""
        clone = Instance()
        clone._relations = {name: set(rows) for name, rows in self._relations.items()}
        return clone

    def restricted(self, names: Iterable[str]) -> "Instance":
        """Return the sub-instance containing only the relations in *names*."""
        wanted = set(names)
        clone = Instance()
        clone._relations = {
            name: set(rows) for name, rows in self._relations.items() if name in wanted
        }
        return clone

    def union(self, other: "Instance") -> "Instance":
        """Return the fact-wise union of the two instances."""
        result = self.copy()
        for fact in other.facts():
            result.add_fact(fact)
        return result

    def update(self, other: "Instance") -> None:
        """Add all facts of *other* into this instance."""
        for fact in other.facts():
            self.add_fact(fact)

    def renamed(self, mapping: Mapping[str, str]) -> "Instance":
        """Return a copy with relation names renamed according to *mapping*."""
        clone = Instance()
        for fact in self.facts():
            clone.add(mapping.get(fact.relation, fact.relation), *fact.paths)
        return clone

    # -- equality and representation -----------------------------------------------------

    def _canonical(self) -> frozenset[Fact]:
        return frozenset(self.facts())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._canonical() == other._canonical()

    def __hash__(self) -> int:
        return hash(self._canonical())

    def __repr__(self) -> str:
        return f"Instance({sorted(str(fact) for fact in self.facts())})"

    def __str__(self) -> str:
        lines = sorted(str(fact) + "." for fact in self.facts())
        return "\n".join(lines)


def _as_row(row: object) -> tuple:
    """Interpret *row* as a tuple of path-like arguments."""
    if isinstance(row, tuple):
        return row
    if isinstance(row, (Path, str)):
        return (row,)
    if isinstance(row, list):
        return tuple(row)
    return (row,)
