"""Facts and instances (Section 2.1 and 2.3).

An *instance* of a schema assigns to each relation name a finite relation on
paths.  Equivalently (and this is the view used by the semantics in Section
2.3), an instance is a finite set of *facts* ``R(p1, ..., pn)`` where each
``pi`` is a path.

Relations are stored as :class:`repro.storage.Relation` objects, which carry
cached read views and lazy secondary indexes; :meth:`Instance.relation` and
:meth:`Instance.paths` therefore return the *same* frozen snapshot on repeated
calls between mutations instead of allocating a fresh copy per call, and the
evaluation engine reaches the indexes through :meth:`Instance.storage`.
Extensional equality (same set of facts) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import ModelError
from repro.model.schema import Schema
from repro.model.terms import Path, Value, as_path
from repro.storage import EMPTY_ROWS, Relation, TermTable

__all__ = ["DeltaResult", "Fact", "Instance", "InstanceDelta"]


class Fact:
    """A fact ``R(p1, ..., pn)``: a relation name applied to a tuple of paths."""

    __slots__ = ("_relation", "_paths", "_hash")

    def __init__(self, relation: str, paths: Iterable["Path | Value"] = ()):
        if not isinstance(relation, str) or not relation:
            raise ModelError(f"relation names must be non-empty strings, got {relation!r}")
        self._relation = relation
        self._paths = tuple(as_path(path) for path in paths)
        self._hash = hash((relation, self._paths))

    @staticmethod
    def _from_trusted(relation: str, paths: "tuple[Path, ...]") -> "Fact":
        """Build a fact from an already-validated path tuple (internal).

        Skips the argument coercion of ``__init__``; callers must pass a
        non-empty relation name and a tuple of :class:`Path` objects.
        """
        fact = Fact.__new__(Fact)
        fact._relation = relation
        fact._paths = paths
        fact._hash = hash((relation, paths))
        return fact

    @property
    def relation(self) -> str:
        """The relation name of this fact."""
        return self._relation

    @property
    def paths(self) -> tuple[Path, ...]:
        """The argument paths of this fact."""
        return self._paths

    @property
    def arity(self) -> int:
        """The number of arguments of this fact."""
        return len(self._paths)

    def is_flat(self) -> bool:
        """Return ``True`` if none of the argument paths contains packing."""
        return all(path.is_flat() for path in self._paths)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fact)
            and self._relation == other._relation
            and self._paths == other._paths
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Fact({self._relation!r}, {list(self._paths)!r})"

    def __str__(self) -> str:
        if not self._paths:
            return self._relation
        return f"{self._relation}({', '.join(str(path) for path in self._paths)})"


class Instance:
    """A finite set of facts, organised per relation name.

    The class behaves like a mutable database: facts can be added and the
    relations inspected.  Equality is extensional (same set of facts).
    """

    __slots__ = ("_relations", "_terms")

    def __init__(self, facts: "Iterable[Fact] | Mapping[str, Iterable[tuple]] | None" = None):
        self._relations: dict[str, Relation] = {}
        self._terms: "TermTable | None" = None
        if facts is None:
            return
        if isinstance(facts, Mapping):
            for relation, tuples in facts.items():
                for row in tuples:
                    self.add(relation, *_as_row(row))
        else:
            for fact in facts:
                self.add_fact(fact)

    # -- construction -------------------------------------------------------------

    @staticmethod
    def from_paths(relation: str, paths: Iterable["Path | Value"]) -> "Instance":
        """Build a unary instance holding *paths* in relation *relation*."""
        instance = Instance()
        for path in paths:
            instance.add(relation, path)
        return instance

    def add_fact(self, fact: Fact) -> None:
        """Insert *fact* into the instance (idempotent)."""
        relation = self._relations.get(fact.relation)
        if relation is None:
            relation = self._relations[fact.relation] = Relation()
        else:
            existing = relation.arity()
            if existing is not None and existing != fact.arity:
                raise ModelError(
                    f"relation {fact.relation!r} already holds tuples of arity {existing}; "
                    f"cannot add a tuple of arity {fact.arity}"
                )
        relation.add(fact.paths)

    def add(self, relation: str, *paths: "Path | Value") -> None:
        """Insert the fact ``relation(paths...)`` into the instance."""
        self.add_fact(Fact(relation, paths))

    def discard_fact(self, fact: Fact, *, keep_empty: bool = False) -> None:
        """Remove *fact* if present.

        By default a relation whose last row is removed disappears from the
        instance entirely; ``keep_empty=True`` keeps it present (but empty),
        which preserves its storage object — and with it the generation
        counter and change log that serving sessions key their cached views
        on.
        """
        relation = self._relations.get(fact.relation)
        if relation is not None:
            relation.discard(fact.paths)
            if not relation and not keep_empty:
                del self._relations[fact.relation]

    def ensure_relation(self, relation: str) -> None:
        """Make *relation* present (possibly empty) in this instance."""
        if relation not in self._relations:
            self._relations[relation] = Relation()

    def set_relation_rows(self, name: str, rows: "Iterable[tuple[Path, ...]]") -> None:
        """Create or wholesale-replace the rows of relation *name*.

        Rows are taken as-is (no per-fact validation); this is the overlay
        primitive of incremental maintenance, which rebuilds small transient
        instances (deltas, old-state overlays) from already-validated rows.
        """
        relation = self._relations.get(name)
        if relation is None:
            self._relations[name] = Relation(rows)
        else:
            relation.set_rows(rows)

    def begin_delta(self) -> "InstanceDelta":
        """Open a transactional batch of additions and retractions.

        The returned :class:`InstanceDelta` buffers mutations and applies
        them atomically on :meth:`InstanceDelta.apply`: all validation runs
        before the first row is touched, so a rejected delta leaves the
        instance exactly as it was.
        """
        return InstanceDelta(self)

    def replace_with(self, facts: Iterable[Fact]) -> None:
        """Replace the entire contents with *facts*, reusing relation storage.

        This is the incremental-delta primitive of semi-naive evaluation: the
        fixpoint loop keeps one delta instance alive across rounds and swaps
        its per-relation row sets in place instead of building a fresh
        :class:`Instance` (and re-validating every fact) each iteration.
        """
        grouped: dict[str, set[tuple[Path, ...]]] = {}
        for fact in facts:
            grouped.setdefault(fact.relation, set()).add(fact.paths)
        for name in list(self._relations):
            if name not in grouped:
                del self._relations[name]
        for name, rows in grouped.items():
            relation = self._relations.get(name)
            if relation is None:
                self._relations[name] = Relation(rows)
            else:
                relation.set_rows(rows)

    # -- access --------------------------------------------------------------------

    @property
    def relation_names(self) -> frozenset[str]:
        """The relation names that occur in this instance."""
        return frozenset(self._relations)

    def relation(self, name: str) -> frozenset[tuple[Path, ...]]:
        """Return the set of tuples stored for relation *name* (empty if absent).

        The returned frozenset is a cached snapshot: repeated calls between
        mutations return the same object (no per-call copy).
        """
        relation = self._relations.get(name)
        if relation is None:
            return EMPTY_ROWS
        return relation.view()

    def paths(self, name: str) -> frozenset[Path]:
        """Return the set of paths of a unary (or nullary) relation *name*."""
        relation = self._relations.get(name)
        if relation is None:
            return frozenset()
        return relation.unary_view(name)

    def storage(self, name: str) -> "Relation | None":
        """Return the indexed :class:`~repro.storage.Relation` for *name*, if present."""
        return self._relations.get(name)

    def term_table(self) -> TermTable:
        """The instance's lazily-created path interner (compiled execution).

        Created on first use; :meth:`copy`/:meth:`restricted` clones made
        afterwards share it, so ids stay stable across the working copies a
        session derives from the same data.
        """
        table = self._terms
        if table is None:
            table = self._terms = TermTable()
        return table

    def contains(self, relation: str, *paths: "Path | Value") -> bool:
        """Return ``True`` if the fact ``relation(paths...)`` is in the instance."""
        row = tuple(as_path(path) for path in paths)
        stored = self._relations.get(relation)
        return stored is not None and row in stored

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts in the instance."""
        for relation, stored in self._relations.items():
            for row in stored.rows:
                yield Fact(relation, row)

    def arity_of(self, relation: str) -> int | None:
        """Return the arity of *relation* in this instance, or ``None`` if empty."""
        stored = self._relations.get(relation)
        if stored is None:
            return None
        return stored.arity()

    def fact_count(self) -> int:
        """Return the total number of facts."""
        return sum(len(stored) for stored in self._relations.values())

    def __len__(self) -> int:
        return self.fact_count()

    def __bool__(self) -> bool:
        return any(self._relations.values())

    def __contains__(self, fact: object) -> bool:
        if not isinstance(fact, Fact):
            return False
        stored = self._relations.get(fact.relation)
        return stored is not None and fact.paths in stored

    # -- predicates -------------------------------------------------------------------

    def is_flat(self) -> bool:
        """Return ``True`` if no packed value occurs anywhere in the instance."""
        return all(fact.is_flat() for fact in self.facts())

    def is_classical(self) -> bool:
        """Return ``True`` if every argument path is a single atomic value."""
        return all(
            path.is_atomic() for fact in self.facts() for path in fact.paths
        )

    def schema(self) -> Schema:
        """Return the schema induced by this instance (arities of present relations)."""
        arities = {}
        for relation, stored in self._relations.items():
            arities[relation] = stored.arity() or 0
        return Schema(arities)

    def max_path_length(self) -> int:
        """Return the maximal length of a path in the instance (0 if empty)."""
        return max((len(path) for fact in self.facts() for path in fact.paths), default=0)

    def atoms(self) -> frozenset[str]:
        """Return all atomic values occurring (at any depth) in the instance."""
        found: set[str] = set()
        for fact in self.facts():
            for path in fact.paths:
                found.update(path.atoms())
        return frozenset(found)

    # -- algebraic combinations ---------------------------------------------------------

    def copy(self) -> "Instance":
        """Return a deep-enough copy (facts are immutable, so row sets are copied).

        The term table is *shared*, not copied: it is append-only, so ids
        minted while evaluating the copy stay valid for the original (and
        vice versa), which is what keeps ids stable across the working copies
        a session makes.
        """
        clone = Instance()
        clone._relations = {name: stored.copy() for name, stored in self._relations.items()}
        clone._terms = self._terms
        return clone

    def restricted(self, names: Iterable[str]) -> "Instance":
        """Return the sub-instance containing only the relations in *names*."""
        wanted = set(names)
        clone = Instance()
        clone._relations = {
            name: stored.copy() for name, stored in self._relations.items() if name in wanted
        }
        clone._terms = self._terms
        return clone

    def union(self, other: "Instance") -> "Instance":
        """Return the fact-wise union of the two instances."""
        result = self.copy()
        for fact in other.facts():
            result.add_fact(fact)
        return result

    def update(self, other: "Instance") -> None:
        """Add all facts of *other* into this instance."""
        for fact in other.facts():
            self.add_fact(fact)

    def renamed(self, mapping: Mapping[str, str]) -> "Instance":
        """Return a copy with relation names renamed according to *mapping*."""
        clone = Instance()
        for fact in self.facts():
            clone.add(mapping.get(fact.relation, fact.relation), *fact.paths)
        return clone

    # -- equality and representation -----------------------------------------------------

    def _canonical(self) -> frozenset[Fact]:
        return frozenset(self.facts())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and self._canonical() == other._canonical()

    def __hash__(self) -> int:
        return hash(self._canonical())

    def __repr__(self) -> str:
        return f"Instance({sorted(str(fact) for fact in self.facts())})"

    def __str__(self) -> str:
        lines = sorted(str(fact) + "." for fact in self.facts())
        return "\n".join(lines)


@dataclass(frozen=True)
class DeltaResult:
    """The *effective* changes an applied :class:`InstanceDelta` made.

    ``added`` holds the facts that were genuinely absent before the delta
    and are present after it; ``removed`` the facts that were present and no
    longer are.  Additions of already-present facts, retractions of absent
    facts, and retract-then-add of the same fact all net out to nothing —
    exactly the delta an incremental view maintainer needs to propagate.
    """

    added: frozenset[Fact] = field(default_factory=frozenset)
    removed: frozenset[Fact] = field(default_factory=frozenset)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


class InstanceDelta:
    """A transactional batch of additions and retractions against one instance.

    Mutations are buffered until :meth:`apply`, which validates the whole
    batch (arity coherence of the additions against the post-retraction
    state) before touching any row, applies retractions first and additions
    second, and returns the net :class:`DeltaResult`.  Relations emptied by
    retractions stay present (see ``keep_empty`` on
    :meth:`Instance.discard_fact`) so serving-session caches keyed on their
    storage survive.  A delta can be applied at most once.
    """

    __slots__ = ("_instance", "_additions", "_retractions", "_applied")

    def __init__(self, instance: Instance):
        self._instance = instance
        self._additions: set[Fact] = set()
        self._retractions: set[Fact] = set()
        self._applied = False

    # -- buffering ------------------------------------------------------------------

    def add_fact(self, fact: Fact) -> "InstanceDelta":
        """Buffer the insertion of *fact*; returns ``self`` for chaining."""
        self._additions.add(fact)
        return self

    def add(self, relation: str, *paths: "Path | Value") -> "InstanceDelta":
        """Buffer the insertion of ``relation(paths...)``."""
        return self.add_fact(Fact(relation, paths))

    def retract_fact(self, fact: Fact) -> "InstanceDelta":
        """Buffer the removal of *fact*; returns ``self`` for chaining."""
        self._retractions.add(fact)
        return self

    def retract(self, relation: str, *paths: "Path | Value") -> "InstanceDelta":
        """Buffer the removal of ``relation(paths...)``."""
        return self.retract_fact(Fact(relation, paths))

    def __len__(self) -> int:
        return len(self._additions) + len(self._retractions)

    # -- validation and application --------------------------------------------------

    def _validate(self) -> None:
        by_relation: dict[str, set[Fact]] = {}
        for fact in self._additions:
            by_relation.setdefault(fact.relation, set()).add(fact)
        retracted_rows: dict[str, int] = {}
        for fact in self._retractions:
            if self._instance.contains(fact.relation, *fact.paths):
                retracted_rows[fact.relation] = retracted_rows.get(fact.relation, 0) + 1
        for name, facts in by_relation.items():
            arities = {fact.arity for fact in facts}
            if len(arities) > 1:
                raise ModelError(
                    f"delta adds tuples of arities {sorted(arities)} to relation {name!r}"
                )
            arity = arities.pop()
            storage = self._instance.storage(name)
            if storage is None:
                continue
            existing = storage.arity()
            if existing is None or existing == arity:
                continue
            # The relation currently holds rows of another arity; the delta is
            # only coherent if it retracts all of them first.
            if len(storage) - retracted_rows.get(name, 0) > 0:
                raise ModelError(
                    f"relation {name!r} holds tuples of arity {existing}; "
                    f"cannot add a tuple of arity {arity}"
                )

    def apply(self) -> DeltaResult:
        """Atomically apply the buffered changes; return the net delta."""
        if self._applied:
            raise ModelError("this delta has already been applied")
        self._validate()
        self._applied = True
        removed: set[Fact] = set()
        added: set[Fact] = set()
        for fact in self._retractions:
            if fact in self._additions:
                continue  # retract-then-add of the same fact nets out
            if fact in self._instance:
                self._instance.discard_fact(fact, keep_empty=True)
                removed.add(fact)
        for fact in self._additions:
            if fact not in self._instance:
                self._instance.add_fact(fact)
                added.add(fact)
        return DeltaResult(added=frozenset(added), removed=frozenset(removed))


def _as_row(row: object) -> tuple:
    """Interpret *row* as a tuple of path-like arguments."""
    if isinstance(row, tuple):
        return row
    if isinstance(row, (Path, str)):
        return (row,)
    if isinstance(row, list):
        return tuple(row)
    return (row,)
