"""Data model for sequence databases (Section 2.1 of the paper)."""

from repro.model.builders import (
    epsilon,
    graph_instance,
    pack,
    path,
    string_path,
    unary_instance,
    word,
)
from repro.model.instance import DeltaResult, Fact, Instance, InstanceDelta
from repro.model.schema import Schema
from repro.model.terms import (
    EPSILON,
    Packed,
    Path,
    Value,
    as_path,
    concat,
    is_atomic_value,
    is_value,
)

__all__ = [
    "EPSILON",
    "DeltaResult",
    "Fact",
    "Instance",
    "InstanceDelta",
    "Packed",
    "Path",
    "Schema",
    "Value",
    "as_path",
    "concat",
    "epsilon",
    "graph_instance",
    "is_atomic_value",
    "is_value",
    "pack",
    "path",
    "string_path",
    "unary_instance",
    "word",
]
