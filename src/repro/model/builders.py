"""Convenience constructors for paths, packed values, and instances.

These helpers keep tests, examples, and benchmarks short:

>>> from repro.model import path, pack, string_path
>>> path("a", "b", pack(path("c", "d")))
Path(['a', 'b', Packed(Path(['c', 'd']))])
>>> string_path("abba")
Path(['a', 'b', 'b', 'a'])
"""

from __future__ import annotations

from typing import Iterable

from repro.model.instance import Instance
from repro.model.terms import Packed, Path, Value

__all__ = ["path", "pack", "epsilon", "string_path", "word", "unary_instance", "graph_instance"]


def path(*elements: "Value | Path") -> Path:
    """Build a path from values and paths, concatenating left to right."""
    return Path.of(*elements)


def pack(*elements: "Value | Path") -> Packed:
    """Build a packed value ``⟨e1·...·en⟩``."""
    return Packed(Path.of(*elements))


def epsilon() -> Path:
    """Return the empty path ``ϵ``."""
    return Path.empty()


def string_path(text: str) -> Path:
    """Build a flat path whose elements are the individual characters of *text*.

    Useful for string-processing examples: ``string_path("abc")`` is ``a·b·c``.
    """
    return Path(tuple(text))


#: Alias used by the string workloads: a "word" is a path of characters.
word = string_path


def unary_instance(relation: str, paths: Iterable["Path | Value | str"]) -> Instance:
    """Build an instance with a single unary relation holding *paths*.

    Plain strings of length greater than one are interpreted as words
    (paths of characters), which matches the paper's string examples.
    """
    instance = Instance()
    for item in paths:
        if isinstance(item, str) and len(item) > 1:
            instance.add(relation, string_path(item))
        elif isinstance(item, str) and len(item) == 0:
            instance.add(relation, Path.empty())
        else:
            instance.add(relation, item)
    return instance


def graph_instance(relation: str, edges: Iterable[tuple[str, str]]) -> Instance:
    """Encode a directed graph as length-two paths, as in Section 5.1.1.

    Each edge ``(a, b)`` becomes the fact ``relation(a·b)``.
    """
    instance = Instance()
    for source, target in edges:
        instance.add(relation, Path.of(source, target))
    return instance
