"""Values, packed values, and paths — the data model of Section 2.1.

The paper fixes a countably infinite universe ``dom`` of *atomic values*, and
defines *packed values*, *values*, and *paths* as the smallest sets such that

1. every atomic value is a value;
2. every finite sequence of values is a path (the empty path is ``ϵ``);
3. if ``p`` is a path then ``⟨p⟩`` is a packed value;
4. every packed value is a value.

In this implementation atomic values are (non-empty) Python strings, packed
values are :class:`Packed` objects wrapping a :class:`Path`, and paths are
:class:`Path` objects — immutable, hashable sequences of values.  A value is
identified with the length-one path containing it (the paper does the same),
which :func:`as_path` makes explicit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.errors import ModelError

__all__ = [
    "Value",
    "Packed",
    "Path",
    "EPSILON",
    "is_atomic_value",
    "is_value",
    "as_path",
    "concat",
]


def is_atomic_value(obj: object) -> bool:
    """Return ``True`` if *obj* is an atomic value (a non-empty string)."""
    return isinstance(obj, str) and len(obj) > 0


def is_value(obj: object) -> bool:
    """Return ``True`` if *obj* is a value (atomic or packed)."""
    return is_atomic_value(obj) or isinstance(obj, Packed)


class Packed:
    """A packed value ``⟨p⟩``: a path temporarily treated as a single value.

    Packing is the J-Logic feature the paper studies as feature ``P``.  A
    packed value compares equal to another packed value exactly when the
    wrapped paths are equal.
    """

    __slots__ = ("_contents", "_hash")

    def __init__(self, contents: "Path | Iterable[Value] | Value" = ()):
        self._contents = as_path(contents)
        self._hash = hash(("Packed", self._contents))

    @property
    def contents(self) -> "Path":
        """The path wrapped by this packed value."""
        return self._contents

    def packing_depth(self) -> int:
        """Return the nesting depth of packing inside this value (at least 1)."""
        return 1 + self._contents.packing_depth()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Packed) and self._contents == other._contents

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Packed({self._contents!r})"

    def __str__(self) -> str:
        return f"<{self._contents}>"


#: The type of values: atomic values (strings) or packed values.
Value = Union[str, Packed]


class Path:
    """An immutable finite sequence of values.

    Concatenation (``+``) is associative because a path is stored as a flat
    tuple of values; nesting can only be created explicitly through
    :class:`Packed`.
    """

    __slots__ = ("_elements", "_hash")

    def __init__(self, elements: Iterable[Value] = ()):
        items = tuple(elements)
        for item in items:
            if not is_value(item):
                raise ModelError(
                    f"path elements must be atomic values (non-empty strings) or "
                    f"packed values, got {item!r}"
                )
        self._elements = items
        self._hash = hash(("Path", items))

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _from_trusted(items: tuple) -> "Path":
        """Build a path from an already-validated value tuple (internal).

        Skips the per-element validation of ``__init__``; callers must pass a
        tuple whose items came out of existing :class:`Path` objects.
        """
        path = Path.__new__(Path)
        path._elements = items
        path._hash = hash(("Path", items))
        return path

    @staticmethod
    def empty() -> "Path":
        """Return the empty path ``ϵ``."""
        return EPSILON

    @staticmethod
    def of(*elements: "Value | Path") -> "Path":
        """Build a path by concatenating values and paths left to right.

        ``Path.of("a", "b", Packed(Path.of("c")))`` is ``a·b·⟨c⟩``.
        """
        result: list[Value] = []
        for element in elements:
            if isinstance(element, Path):
                result.extend(element._elements)
            elif is_value(element):
                result.append(element)
            else:
                raise ModelError(f"cannot build a path from {element!r}")
        return Path(result)

    # -- sequence protocol ----------------------------------------------------

    @property
    def elements(self) -> tuple[Value, ...]:
        """The values of this path, as a tuple."""
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Value]:
        return iter(self._elements)

    def __getitem__(self, index: "int | slice") -> "Value | Path":
        if isinstance(index, slice):
            return Path(self._elements[index])
        return self._elements[index]

    def __contains__(self, value: Value) -> bool:
        return value in self._elements

    # -- algebra ---------------------------------------------------------------

    def __add__(self, other: "Path | Value") -> "Path":
        if isinstance(other, Path):
            return Path(self._elements + other._elements)
        if is_value(other):
            return Path(self._elements + (other,))
        return NotImplemented

    def __radd__(self, other: Value) -> "Path":
        if is_value(other):
            return Path((other,) + self._elements)
        return NotImplemented

    def concat(self, *others: "Path | Value") -> "Path":
        """Concatenate this path with further paths or values."""
        return Path.of(self, *others)

    def __mul__(self, times: int) -> "Path":
        if not isinstance(times, int) or times < 0:
            raise ModelError("a path can only be repeated a non-negative number of times")
        return Path(self._elements * times)

    __rmul__ = __mul__

    # -- predicates and measures ----------------------------------------------

    def is_empty(self) -> bool:
        """Return ``True`` for the empty path ``ϵ``."""
        return not self._elements

    def is_flat(self) -> bool:
        """Return ``True`` if no packed value occurs anywhere in this path.

        Flat instances (Section 3.1) contain only flat paths.
        """
        return all(not isinstance(element, Packed) for element in self._elements)

    def packing_depth(self) -> int:
        """Return the maximum packing nesting depth of the path (0 if flat)."""
        depth = 0
        for element in self._elements:
            if isinstance(element, Packed):
                depth = max(depth, element.packing_depth())
        return depth

    def is_single_value(self) -> bool:
        """Return ``True`` if the path has length exactly one."""
        return len(self._elements) == 1

    def is_atomic(self) -> bool:
        """Return ``True`` if the path is a single atomic value."""
        return len(self._elements) == 1 and is_atomic_value(self._elements[0])

    # -- derived paths ----------------------------------------------------------

    def prefixes(self) -> Iterator["Path"]:
        """Yield every prefix of this path, from ``ϵ`` to the path itself."""
        for end in range(len(self._elements) + 1):
            yield Path(self._elements[:end])

    def suffixes(self) -> Iterator["Path"]:
        """Yield every suffix of this path, from the path itself to ``ϵ``."""
        for start in range(len(self._elements) + 1):
            yield Path(self._elements[start:])

    def substrings(self) -> Iterator["Path"]:
        """Yield every substring (contiguous subsequence) of this path.

        The empty path is yielded exactly once.  This mirrors the ``SUB``
        operator of the sequence relational algebra (Section 7).
        """
        yield EPSILON
        n = len(self._elements)
        for start in range(n):
            for end in range(start + 1, n + 1):
                yield Path(self._elements[start:end])

    def is_substring_of(self, other: "Path") -> bool:
        """Return ``True`` if this path occurs contiguously inside *other*."""
        if self.is_empty():
            return True
        n, m = len(self._elements), len(other._elements)
        if n > m:
            return False
        for start in range(m - n + 1):
            if other._elements[start:start + n] == self._elements:
                return True
        return False

    def reversed(self) -> "Path":
        """Return the reversal of this path (element order reversed)."""
        return Path(tuple(reversed(self._elements)))

    def atoms(self) -> Iterator[str]:
        """Yield the atomic values occurring in this path, at any depth."""
        for element in self._elements:
            if isinstance(element, Packed):
                yield from element.contents.atoms()
            else:
                yield element

    # -- equality and representation --------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self._elements == other._elements

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Path({list(self._elements)!r})"

    def __str__(self) -> str:
        if not self._elements:
            return "ϵ"
        return "·".join(str(element) for element in self._elements)


#: The empty path ``ϵ``.
EPSILON = Path(())


def as_path(obj: "Path | Packed | str | Iterable[Value]") -> Path:
    """Coerce *obj* into a :class:`Path`.

    Values are identified with length-one paths; iterables of values are
    converted element-wise.  Strings are treated as single atomic values, not
    as sequences of characters.
    """
    if isinstance(obj, Path):
        return obj
    if is_atomic_value(obj) or isinstance(obj, Packed):
        return Path((obj,))
    if isinstance(obj, str):
        raise ModelError("atomic values must be non-empty strings")
    try:
        return Path(obj)
    except TypeError as exc:  # not iterable
        raise ModelError(f"cannot interpret {obj!r} as a path") from exc


def concat(*parts: "Path | Value") -> Path:
    """Concatenate paths and values into a single path."""
    return Path.of(*parts)
