"""repro — an executable reproduction of "Expressiveness within Sequence Datalog" (PODS 2021).

The package provides:

* a data model for sequence databases (:mod:`repro.model`);
* the abstract and concrete syntax of Sequence Datalog (:mod:`repro.syntax`,
  :mod:`repro.parser`);
* a stratified evaluation engine with associative path matching
  (:mod:`repro.engine`);
* associative unification for path expressions (:mod:`repro.unification`);
* the feature/fragment machinery and the Figure 1 Hasse diagram
  (:mod:`repro.fragments`);
* every program transformation of Section 4 (:mod:`repro.transform`);
* the sequence relational algebra of Section 7 (:mod:`repro.algebra`);
* canonical queries, workload generators, and analysis drivers used by the
  benchmark harness (:mod:`repro.queries`, :mod:`repro.workloads`,
  :mod:`repro.analysis`).
"""

from repro.engine import (
    DEFAULT_LIMITS,
    EvaluationLimits,
    ProgramQuery,
    QuerySession,
    evaluate_program,
)
from repro.model import Fact, Instance, Packed, Path, Schema, pack, path, unary_instance
from repro.parser import parse_program, parse_rule, unparse_program
from repro.syntax import Program, Rule, Stratum

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_LIMITS",
    "EvaluationLimits",
    "Fact",
    "Instance",
    "Packed",
    "Path",
    "Program",
    "ProgramQuery",
    "QuerySession",
    "Rule",
    "Schema",
    "Stratum",
    "__version__",
    "evaluate_program",
    "pack",
    "parse_program",
    "parse_rule",
    "path",
    "unary_instance",
    "unparse_program",
]
