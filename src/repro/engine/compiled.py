"""Compiled id-space rule execution (``execution="compiled"``).

This is the hot-path backend beneath the bound-aware planner: a rule whose
literals fall in the *compilable fragment* lowers once into a
:class:`CompiledRule`.  Applying one runs hash joins over the dense integer
ids of a per-instance :class:`~repro.storage.columnar.TermTable` instead of
threading :class:`~repro.engine.valuation.Valuation` dictionaries through
per-row interpreter loops:

* intermediate valuations are plain tuples of ints (one slot per variable
  bound so far), extended by tuple concatenation instead of dict copies;
* each body predicate probes the :class:`~repro.storage.columnar.ColumnarView`
  groupings of its source relation — by whole argument id, or by first/last
  *element* id when only a prefix or suffix of a sequence pattern is bound —
  batch-style over the current rows;
* sequence patterns (``@x·@y``, ``$s.a``, …) destructure rows through the
  table's memoised element decomposition: an ``@x`` slot accepts an element
  iff its id carries the atomic flag (mirroring
  :func:`repro.engine.match.match_expression` semantics), and a single
  ``$x`` binds the spliced middle as its own interned id;
* negated literals become id-row membership tests against the columnar
  row set of the instance relation;
* head rows are deduplicated *as id tuples* and only the unique ones decode
  back to :class:`~repro.model.instance.Fact` objects — ids never escape the
  engine.

The compilable fragment: no equations; every positive body component is a
lone variable, ground, or a sequence of atoms/atom-variables/ground-packed
items with at most one path variable; head and negated components are the
same but with any number of (bound) path variables, since they construct
rather than match.  Rules outside the fragment do not compile;
:class:`~repro.engine.evaluation.RuleEvaluator` transparently falls back to
the indexed interpreter for them, so ``execution="compiled"`` is always
exactly answer-equivalent to ``"indexed"``/``"scan"``.

Frontier dictionaries (semi-naive deltas, the telescoped maintenance joins)
are honoured position-by-position: each body step sources its relation from
``frontier[position]`` when present, in the same static position space as
the interpreter.
"""

from operator import itemgetter
from typing import Optional, Sequence

from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.model.instance import Fact, Instance
from repro.model.terms import Packed, Path
from repro.syntax.expressions import (
    AtomVariable,
    PackedExpression,
    PathExpression,
    PathVariable,
)
from repro.syntax.literals import Literal, Predicate

__all__ = ["CompiledRule", "compile_rule"]

# Candidate-check op tags (first tuple element of every op):
_LEN = 0  # (0, pos, n, exact)        — length of the path at pos
_WCONST = 1  # (1, pos, id)           — whole argument equals a constant
_WSLOT = 2  # (2, pos, slot)          — whole argument equals a register
_WLOCAL = 3  # (3, pos, new_index)    — whole argument equals an earlier bind
_WFREE = 4  # (4, pos, needs_atomic)  — bind the whole argument
_ECONST = 5  # (5, pos, idx, eid)     — element at idx equals a constant
_ESLOT = 6  # (6, pos, idx, slot)     — element at idx equals a register
_ELOCAL = 7  # (7, pos, idx, new_index)
_EFREE = 8  # (8, pos, idx)           — bind element at idx (must be atomic)
_PSLOT = 9  # (9, pos, start, from_end, slot)      — spliced middle vs register
_PLOCAL = 10  # (10, pos, start, from_end, new_index)
_PFREE = 11  # (11, pos, start, from_end)          — bind the spliced middle


def _classify(component: PathExpression, *, binding_only: bool):
    """Classify one component, or ``None`` if outside the fragment.

    *binding_only* components (head, negations) construct a path from bound
    variables, so any number of path variables is fine; matching components
    destructure, which is only deterministic with at most one.
    """
    items = component.items
    if len(items) == 1 and isinstance(items[0], (AtomVariable, PathVariable)):
        return ("var", items[0])
    if component.is_ground():
        return ("const", component.ground_path())
    parts = []
    path_vars = 0
    for item in items:
        if isinstance(item, str):
            parts.append(("c", item))
        elif isinstance(item, AtomVariable):
            parts.append(("a", item))
        elif isinstance(item, PathVariable):
            parts.append(("p", item))
            path_vars += 1
        elif isinstance(item, PackedExpression) and item.inner.is_ground():
            parts.append(("c", Packed(item.inner.ground_path())))
        else:
            return None
    if path_vars > 1 and not binding_only:
        return None
    return ("seq", tuple(parts))


def _component_variables(kind, payload):
    if kind == "var":
        yield payload
    elif kind == "seq":
        for part_kind, part in payload:
            if part_kind != "c":
                yield part


class _Step:
    """One positive body predicate: its static position, name, and components."""

    __slots__ = ("position", "name", "arity", "components")

    def __init__(self, position: int, predicate: Predicate, components: tuple):
        self.position = position
        self.name = predicate.name
        self.arity = predicate.arity
        self.components = components

    def probeable(self, bound: set) -> bool:
        """Whether some hash grouping is usable given the *bound* variables."""
        for kind, payload in self.components:
            if kind == "const":
                return True
            if kind == "var":
                if payload in bound:
                    return True
            elif kind == "seq":
                if all(pk == "c" or pv in bound for pk, pv in payload):
                    return True
                first_kind, first = payload[0]
                if first_kind == "c" or (first_kind == "a" and first in bound):
                    return True
                last_kind, last = payload[-1]
                if last_kind == "c" or (last_kind == "a" and last in bound):
                    return True
        return False


class _Constraint:
    """A constructed membership target: one negated predicate or the head."""

    __slots__ = ("name", "arity", "components")

    def __init__(self, predicate: Predicate, components: tuple):
        self.name = predicate.name
        self.arity = predicate.arity
        self.components = components


def _target_spec(components: tuple, slots: dict, table) -> tuple:
    """Resolve constructed components to ``(tag, payload)`` id recipes."""
    intern = table.intern
    spec = []
    for kind, payload in components:
        if kind == "const":
            spec.append((0, intern(payload)))
        elif kind == "var":
            spec.append((1, slots[payload]))
        else:
            parts = tuple(
                (0, intern(Path((part,)))) if part_kind == "c" else (1, slots[part])
                for part_kind, part in payload
            )
            spec.append((2, parts))
    return tuple(spec)


def _target_ids(spec: tuple, current: tuple, concat) -> tuple:
    out = []
    for tag, payload in spec:
        if tag == 0:
            out.append(payload)
        elif tag == 1:
            out.append(current[payload])
        else:
            out.append(
                concat(tuple(p if t == 0 else current[p] for t, p in payload))
            )
    return tuple(out)


class CompiledRule:
    """An id-space execution plan for one compilable rule.

    The plan fixes *what* each step checks (constants, repeated variables,
    atomicity, splice cuts) at compile time; the join *order* is chosen
    greedily per call from the live relation sizes — smallest probeable
    source first — mirroring the bound-aware planner's heuristic in id space.
    """

    __slots__ = ("head_name", "head_components", "head_vars", "head_spec", "steps", "negations")

    def __init__(self, head_name, head_components, steps, negations):
        self.head_name = head_name
        self.head_components = head_components
        self.steps = steps
        self.negations = negations
        # The distinct head variables in first-appearance order, and the
        # head recipe expressed against *that* order rather than per-call
        # register slots.  Both are call-order independent, so decoded facts
        # can be cached across rounds (and across rules with the same head
        # shape) keyed on the projected variable ids.
        head_vars: list = []
        for kind, payload in head_components:
            for variable in _component_variables(kind, payload):
                if variable not in head_vars:
                    head_vars.append(variable)
        index_of = {variable: index for index, variable in enumerate(head_vars)}
        spec = []
        for kind, payload in head_components:
            if kind == "const":
                spec.append((0, payload))
            elif kind == "var":
                spec.append((1, index_of[payload]))
            else:
                spec.append(
                    (
                        2,
                        tuple(
                            (0, Path((part,)))
                            if part_kind == "c"
                            else (1, index_of[part])
                            for part_kind, part in payload
                        ),
                    )
                )
        self.head_vars = tuple(head_vars)
        self.head_spec = tuple(spec)

    # -- per-call step resolution --------------------------------------------------------

    def _resolve_step(self, step: _Step, view, slots: dict, frees: list, table):
        """Turn one step into ``(probe, ops)`` against the current registers.

        *frees* is extended with the variables this step binds, in the order
        their values are appended to each match's extension tuple.  The probe
        is ``(groups_dict, key_spec)`` or ``None`` (full scan); *key_spec* is
        ``(0, id)`` for a constant key, ``(1, slot)`` for a register key, or
        ``(2, parts)`` for a concatenated key built per current row.
        """
        intern = table.intern
        ops: list = []
        local: dict = {}
        candidates: list = []  # (priority, grouping, position, drop_span, key_spec)
        for position, (kind, payload) in enumerate(step.components):
            span_start = len(ops)
            if kind == "const":
                cid = intern(payload)
                ops.append((_WCONST, position, cid))
                candidates.append((0, "whole", position, (span_start, span_start + 1), (0, cid)))
            elif kind == "var":
                slot = slots.get(payload)
                if slot is not None:
                    ops.append((_WSLOT, position, slot))
                    candidates.append(
                        (1, "whole", position, (span_start, span_start + 1), (1, slot))
                    )
                elif payload in local:
                    ops.append((_WLOCAL, position, local[payload]))
                else:
                    local[payload] = len(frees)
                    frees.append(payload)
                    ops.append((_WFREE, position, isinstance(payload, AtomVariable)))
            else:  # seq
                parts = payload
                resolved = []
                for part_kind, part in parts:
                    if part_kind == "c":
                        resolved.append((0, intern(Path((part,)))))
                    else:
                        slot = slots.get(part)
                        if slot is None:
                            resolved = None
                            break
                        resolved.append((1, slot))
                p_index = next(
                    (i for i, part in enumerate(parts) if part[0] == "p"), None
                )

                def emit_element(index, part_kind, part):
                    if part_kind == "c":
                        eid = intern(Path((part,)))
                        ops.append((_ECONST, position, index, eid))
                        return (0, eid)
                    slot = slots.get(part)
                    if slot is not None:
                        ops.append((_ESLOT, position, index, slot))
                        return (1, slot)
                    if part in local:
                        ops.append((_ELOCAL, position, index, local[part]))
                    else:
                        local[part] = len(frees)
                        frees.append(part)
                        ops.append((_EFREE, position, index))
                    return None

                if p_index is None:
                    n = len(parts)
                    ops.append((_LEN, position, n, True))
                    for index, (part_kind, part) in enumerate(parts):
                        op_at = len(ops)
                        key = emit_element(index, part_kind, part)
                        if key is not None and index in (0, n - 1):
                            candidates.append(
                                (
                                    3,
                                    "first" if index == 0 else "last",
                                    position,
                                    (op_at, op_at + 1),
                                    key,
                                )
                            )
                else:
                    pre = parts[:p_index]
                    post = parts[p_index + 1 :]
                    ops.append((_LEN, position, len(pre) + len(post), False))
                    for index, (part_kind, part) in enumerate(pre):
                        op_at = len(ops)
                        key = emit_element(index, part_kind, part)
                        if key is not None and index == 0:
                            candidates.append(
                                (3, "first", position, (op_at, op_at + 1), key)
                            )
                    for offset, (part_kind, part) in enumerate(post):
                        index = offset - len(post)
                        op_at = len(ops)
                        key = emit_element(index, part_kind, part)
                        if key is not None and index == -1:
                            candidates.append(
                                (3, "last", position, (op_at, op_at + 1), key)
                            )
                    p_var = parts[p_index][1]
                    start, from_end = len(pre), len(post)
                    slot = slots.get(p_var)
                    if slot is not None:
                        ops.append((_PSLOT, position, start, from_end, slot))
                    elif p_var in local:
                        ops.append((_PLOCAL, position, start, from_end, local[p_var]))
                    else:
                        local[p_var] = len(frees)
                        frees.append(p_var)
                        ops.append((_PFREE, position, start, from_end))
                if resolved is not None:
                    # Every part is determined: probing the whole-argument
                    # grouping with the concatenated key subsumes all of this
                    # position's checks.
                    candidates.append(
                        (2, "whole", position, (span_start, len(ops)), (2, tuple(resolved)))
                    )

        probe = None
        if candidates:
            candidates.sort(key=lambda entry: entry[0])
            _, grouping, position, drop, key_spec = candidates[0]
            if grouping == "whole":
                groups = view.groups(position)
            elif grouping == "first":
                groups = view.first_groups(position)
            else:
                groups = view.last_groups(position)
            lo, hi = drop
            ops = ops[:lo] + ops[hi:]
            probe = (groups, key_spec, grouping, position)
        return probe, ops

    # -- execution ------------------------------------------------------------------------

    def derive(
        self,
        instance: Instance,
        frontier=None,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        statistics=None,
    ) -> set:
        """One id-space application of the rule; returns the derived facts."""
        table = instance.term_table()
        atomic = table.atomic_flags
        concat = table.concat
        splice = table.splice

        # Resolve every step's source relation (honouring the frontier) and
        # its columnar view up front; any empty source means no derivations.
        pending = []
        for step in self.steps:
            source = instance
            if frontier is not None and step.position in frontier:
                source = frontier[step.position]
            storage = source.storage(step.name)
            if storage is None or not storage:
                return set()
            if storage.arity() != step.arity:
                return set()
            pending.append((step, storage.columnar(table)))

        # Greedy join order: among the remaining steps prefer one that can
        # probe a hash grouping, breaking ties towards the smallest source.
        slots: dict = {}
        bound_vars: set = set()
        ordered = []
        while pending:
            best = None
            best_key = None
            for entry in pending:
                key = (
                    0 if entry[0].probeable(bound_vars) else 1,
                    len(entry[1].id_rows),
                )
                if best_key is None or key < best_key:
                    best, best_key = entry, key
            ordered.append(best)
            pending.remove(best)
            for kind, payload in best[0].components:
                bound_vars.update(_component_variables(kind, payload))

        max_derivations = limits.max_derivations_per_rule
        rows: list = [()]
        width = 0

        for step, view in ordered:
            frees: list = []
            probe, ops = self._resolve_step(step, view, slots, frees, table)
            id_rows = view.id_rows
            out: list = []
            attempts = 0

            groups = key_kind = key_payload = grouping = probe_position = None
            if probe is not None:
                groups, (key_kind, key_payload), grouping, probe_position = probe
                if key_kind == 2 and all(t == 0 for t, _ in key_payload):
                    key_kind, key_payload = 0, concat(
                        tuple(p for _, p in key_payload)
                    )

            if (
                probe is not None
                and key_kind == 1
                and len(ops) == 1
                and ops[0][0] == _WFREE
            ):
                # Fast path: binary-join shape over whole arguments — probe
                # one bound position, emit one free position.
                _, position, needs_atomic = ops[0]
                column = view.column(position)
                slot = key_payload
                lookup = groups.get
                extend = out.extend
                for current in rows:
                    bucket = lookup(current[slot])
                    if bucket is None:
                        continue
                    attempts += len(bucket)
                    if needs_atomic:
                        extend(
                            [
                                current + (column[index],)
                                for index in bucket
                                if atomic[column[index]]
                            ]
                        )
                    else:
                        extend([current + (column[index],) for index in bucket])
                if max_derivations is not None:
                    limits.check_derivations(len(out))
            elif (
                probe is not None
                and key_kind == 1
                and grouping in ("first", "last")
                and len(ops) == 2
                and ops[0][0] == _LEN
                and ops[0][3]
                and ops[1][0] == _EFREE
                and ops[0][1] == ops[1][1] == probe_position
            ):
                # Fast path: sequence-destructure join — probe one bound
                # element, emit one free element (the unary-reachability
                # inner loop).  The prejoined view index has already
                # filtered length and atomicity, so each probe is one dict
                # lookup plus appends.
                n = ops[0][2]
                index = ops[1][2]
                pairs = view.element_join_groups(
                    probe_position, n, 0 if grouping == "first" else -1, index
                )
                slot = key_payload
                lookup = pairs.get
                extend = out.extend
                for current in rows:
                    bucket = lookup(current[slot])
                    if bucket is None:
                        continue
                    attempts += len(bucket)
                    extend([current + (ident,) for ident in bucket])
                if max_derivations is not None:
                    limits.check_derivations(len(out))
            elif (
                probe is None
                and len(ops) >= 2
                and ops[0][0] == _LEN
                and ops[0][3]
                and all(op[0] == _EFREE and op[1] == ops[0][1] for op in ops[1:])
            ):
                # Fast path: full destructure scan — one fixed-length
                # sequence pattern binding only fresh atomic elements (the
                # leading delta scan of a unary rule).  No per-row op
                # dispatch; just length and atomicity tests.
                n = ops[0][2]
                indexes = tuple(op[2] for op in ops[1:])
                decomposed_column = view.decomposed(ops[0][1])
                append = out.append
                extend = out.extend
                attempts += len(rows) * len(decomposed_column)
                if len(indexes) == 2:
                    first, second = indexes
                    for current in rows:
                        extend(
                            [
                                current + (decomposed[first], decomposed[second])
                                for decomposed in decomposed_column
                                if len(decomposed) == n
                                and atomic[decomposed[first]]
                                and atomic[decomposed[second]]
                            ]
                        )
                else:
                    for current in rows:
                        for decomposed in decomposed_column:
                            if len(decomposed) != n:
                                continue
                            new = []
                            ok = True
                            for index in indexes:
                                ident = decomposed[index]
                                if not atomic[ident]:
                                    ok = False
                                    break
                                new.append(ident)
                            if ok:
                                append(current + tuple(new))
                if max_derivations is not None:
                    limits.check_derivations(len(out))
            else:
                decomp_cols = {
                    op[1]: view.decomposed(op[1]) for op in ops if op[0] == _LEN
                }
                count = 0
                shared = None
                if probe is not None and key_kind == 0:
                    shared = groups.get(key_payload)
                    shared = () if shared is None else shared
                scan = range(len(id_rows)) if probe is None else None
                for current in rows:
                    if probe is None:
                        bucket = scan
                    elif key_kind == 0:
                        bucket = shared
                    else:
                        if key_kind == 1:
                            key = current[key_payload]
                        else:
                            key = concat(
                                tuple(
                                    p if t == 0 else current[p]
                                    for t, p in key_payload
                                )
                            )
                        bucket = groups.get(key)
                        if bucket is None:
                            continue
                    attempts += len(bucket)
                    for index in bucket:
                        row = id_rows[index]
                        new: list = []
                        decomposed = ()
                        ok = True
                        for op in ops:
                            tag = op[0]
                            if tag == _LEN:
                                decomposed = decomp_cols[op[1]][index]
                                n = len(decomposed)
                                if (n != op[2]) if op[3] else (n < op[2]):
                                    ok = False
                                    break
                            elif tag == _WCONST:
                                if row[op[1]] != op[2]:
                                    ok = False
                                    break
                            elif tag == _WSLOT:
                                if row[op[1]] != current[op[2]]:
                                    ok = False
                                    break
                            elif tag == _WLOCAL:
                                if row[op[1]] != new[op[2]]:
                                    ok = False
                                    break
                            elif tag == _WFREE:
                                ident = row[op[1]]
                                if op[2] and not atomic[ident]:
                                    ok = False
                                    break
                                new.append(ident)
                            elif tag == _ECONST:
                                if decomposed[op[2]] != op[3]:
                                    ok = False
                                    break
                            elif tag == _ESLOT:
                                if decomposed[op[2]] != current[op[3]]:
                                    ok = False
                                    break
                            elif tag == _ELOCAL:
                                if decomposed[op[2]] != new[op[3]]:
                                    ok = False
                                    break
                            elif tag == _EFREE:
                                ident = decomposed[op[2]]
                                if not atomic[ident]:
                                    ok = False
                                    break
                                new.append(ident)
                            elif tag == _PSLOT:
                                if splice(row[op[1]], op[2], op[3]) != current[op[4]]:
                                    ok = False
                                    break
                            elif tag == _PLOCAL:
                                if splice(row[op[1]], op[2], op[3]) != new[op[4]]:
                                    ok = False
                                    break
                            else:  # _PFREE
                                new.append(splice(row[op[1]], op[2], op[3]))
                        if not ok:
                            continue
                        out.append(current + tuple(new))
                        if max_derivations is not None:
                            count += 1
                            limits.check_derivations(count)

            if statistics is not None:
                statistics.extension_attempts += attempts
            if not out:
                return set()
            rows = out
            for offset, variable in enumerate(frees):
                slots[variable] = width + offset
            width += len(frees)

        # Negated literals: membership tests against the instance relation
        # (never the frontier), exactly like the interpreter's filters.
        for negation in self.negations:
            storage = instance.storage(negation.name)
            if storage is None or not storage:
                continue
            if storage.arity() != negation.arity:
                continue
            members = storage.columnar(table).id_row_set
            spec = _target_spec(negation.components, slots, table)
            rows = [
                current
                for current in rows
                if _target_ids(spec, current, concat) not in members
            ]
            if not rows:
                return set()

        # Decode: project each result row down to the head variables and
        # look the projection up in a table-lifetime decode cache before
        # constructing anything.  The cache is keyed by the id-resolved head
        # recipe (call-order independent), so a head row derived again in a
        # later round — or by another rule with the same head shape — reuses
        # the already-decoded Fact instead of rebuilding ids and paths.
        name = self.head_name
        intern = table.intern
        proj = tuple(slots[variable] for variable in self.head_vars)
        respec = tuple(
            (0, intern(payload))
            if tag == 0
            else (
                (tag, tuple((t, intern(p) if t == 0 else p) for t, p in payload))
                if tag == 2
                else (tag, payload)
            )
            for tag, payload in self.head_spec
        )
        cache = table.scratch.get((name, respec))
        if cache is None:
            cache = table.scratch[(name, respec)] = {}
        path_of = table.path
        check_path_length = limits.check_path_length
        lookup = cache.get
        facts: set = set()
        add_fact = facts.add
        if len(proj) == 1:
            # Single head variable: key on the bare id, no tuple per row.
            slot = proj[0]
            for current in rows:
                key = current[slot]
                entry = lookup(key)
                if entry is None:
                    ids = _target_ids(respec, (key,), concat)
                    paths = tuple(path_of(ident) for ident in ids)
                    longest = max((len(path) for path in paths), default=0)
                    check_path_length(longest)
                    cache[key] = entry = (Fact._from_trusted(name, paths), longest)
                else:
                    check_path_length(entry[1])
                add_fact(entry[0])
            return facts
        project = itemgetter(*proj) if proj else None
        if (
            project is not None
            and len(respec) == 1
            and respec[0][0] == 2
            and tuple(respec[0][1]) == tuple((1, index) for index in range(len(proj)))
        ):
            # Single sequence head over the projected variables in order
            # (e.g. ``T(@x·@z)``): the projection key *is* the concat recipe.
            for current in rows:
                key = project(current)
                entry = lookup(key)
                if entry is None:
                    path = path_of(concat(key))
                    longest = len(path)
                    check_path_length(longest)
                    cache[key] = entry = (Fact._from_trusted(name, (path,)), longest)
                else:
                    check_path_length(entry[1])
                add_fact(entry[0])
            return facts
        for current in rows:
            key = project(current) if project is not None else ()
            entry = lookup(key)
            if entry is None:
                ids = _target_ids(respec, key, concat)
                paths = tuple(path_of(ident) for ident in ids)
                longest = max((len(path) for path in paths), default=0)
                check_path_length(longest)
                cache[key] = entry = (Fact._from_trusted(name, paths), longest)
            else:
                # Re-check against *these* limits: the cached fact may have
                # been decoded under a more permissive budget.
                check_path_length(entry[1])
            add_fact(entry[0])
        return facts


def compile_rule(head: Predicate, order: Sequence[Literal]) -> Optional[CompiledRule]:
    """Compile *head* ``:-`` *order* into id-space form, or ``None``.

    *order* is the rule's static body order (the frontier position space of
    :class:`~repro.engine.evaluation.RuleEvaluator`); step positions index
    into it.  Returns ``None`` when any literal falls outside the compilable
    fragment — the caller then keeps the interpreted path for this rule.
    """
    steps = []
    negations = []
    positive_vars: set = set()
    for position, literal in enumerate(order):
        if literal.is_equation():
            return None
        predicate = literal.atom
        components = []
        for component in predicate.components:
            classified = _classify(component, binding_only=not literal.positive)
            if classified is None:
                return None
            components.append(classified)
        if literal.positive:
            steps.append(_Step(position, predicate, tuple(components)))
            for kind, payload in components:
                positive_vars.update(_component_variables(kind, payload))
        else:
            negations.append(_Constraint(predicate, tuple(components)))

    for negation in negations:
        for kind, payload in negation.components:
            for variable in _component_variables(kind, payload):
                if variable not in positive_vars:
                    return None

    head_components = []
    for component in head.components:
        classified = _classify(component, binding_only=True)
        if classified is None:
            return None
        for variable in _component_variables(*classified):
            if variable not in positive_vars:
                return None
        head_components.append(classified)

    return CompiledRule(head.name, tuple(head_components), tuple(steps), tuple(negations))
