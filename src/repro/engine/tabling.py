"""Subsumption-based tabling of adorned subgoals.

Goal-directed evaluation (:mod:`repro.transform.magic`) answers one call —
an output relation, an adornment, and a seed of concrete paths for the bound
positions — by evaluating the magic-rewritten program from that seed.  A
serving workload rarely asks one call: it asks many *overlapping* calls, and
re-running the magic pipeline per call re-derives the same answers again and
again.  This module pools those answers the way the memory-pod systems of
PAPERS.md pool buffers: one computed resource is shared across every consumer
it *subsumes* instead of being recomputed per consumer.

A call ``(A₂, s₂)`` is subsumed by a tabled call ``(A₁, s₁)`` when

* every position bound by ``A₁`` is also bound by ``A₂`` (the tabled goal
  asks with fewer restrictions), and
* ``s₂`` agrees with ``s₁`` on the positions ``A₁`` binds.

Goal-directed evaluation of a call derives the *complete* set of output
facts matching its seed, so the subsumed call's answers are exactly the
tabled entry's answers filtered down to the more specific binding — zero
evaluation.  Seeds are therefore ordered by generality: entries with fewer
bound positions sit higher, the all-free entry (when present) subsumes every
call, and inserting a more general entry *absorbs* the entries it subsumes
(they can never serve a call the new entry does not serve better).

Each entry's answers are kept as a
:class:`~repro.engine.maintenance.MaintainedFixpoint` of the magic program
with the seed planted, so :meth:`~repro.engine.query.QuerySession.update`
maintains every tabled subgoal incrementally alongside the session's full
materialization; entries whose magic program maintenance cannot own are
stored as plain snapshots and evicted on the first update that touches them.

The table is also what makes the *relaxed* expanding-magic-recursion
boundary viable: a call whose adornment is refused as expanding is rewritten
for a generalized adornment (``magic_rewrite(..., on_expanding="generalize")``),
evaluated once, and tabled under the generalized key — every later call it
subsumes (including repeats of the originally refused one) is detected as a
repeated subsumed call and served from the table instead of re-deriving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.engine.fixpoint import EvaluationStatistics
from repro.engine.maintenance import MaintainedFixpoint
from repro.engine.reasons import SNAPSHOT_NOT_MAINTAINED, maintenance_reason, reason
from repro.errors import EvaluationError, SubgoalTableError
from repro.model.instance import Fact, Instance
from repro.model.terms import Path

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.partition import ShardingSpec

__all__ = ["DEFAULT_MAX_ENTRIES", "TableEntry", "AnswerTable"]

#: Default cap on live entries per table; the least recently used entry is
#: evicted first.  Serving fleets pin many sessions per process — an
#: unbounded table would let one hot query monopolise memory.
DEFAULT_MAX_ENTRIES = 64

#: How many maintenance evictions the table remembers for introspection.
#: Only the seed description and the reason are kept — never the evicted
#: entry itself, whose materialized answer state must become collectable.
EVICTION_LOG_LIMIT = 32


class TableEntry:
    """One tabled call: an adorned seed plus its complete answer set.

    ``positions``/``values`` are the call's bound output positions and their
    concrete paths (the seed).  ``fixpoint`` is the maintained
    materialization of the magic program evaluated from that seed, when
    maintenance can own it; ``snapshot`` the plain materialized instance
    otherwise.  Exactly one of the two is set.
    """

    __slots__ = (
        "output_relation",
        "positions",
        "values",
        "compiled",
        "fixpoint",
        "snapshot",
        "known_relations",
        "shard_footprint",
        "hits",
        "last_used",
    )

    def __init__(
        self,
        output_relation: str,
        positions: "tuple[int, ...]",
        values: "tuple[Path, ...]",
        compiled,
        *,
        fixpoint: "MaintainedFixpoint | None" = None,
        snapshot: "Instance | None" = None,
        shard_footprint: "frozenset[int] | None" = None,
    ):
        if len(positions) != len(values):
            raise SubgoalTableError(
                f"seed values {values!r} do not line up with bound positions {positions!r}"
            )
        if tuple(sorted(positions)) != tuple(positions):
            raise SubgoalTableError(f"bound positions {positions!r} must be sorted")
        if (fixpoint is None) == (snapshot is None):
            raise SubgoalTableError(
                "a table entry holds either a maintained fixpoint or a plain snapshot"
            )
        self.output_relation = output_relation
        self.positions = positions
        self.values = values
        self.compiled = compiled
        self.fixpoint = fixpoint
        self.snapshot = snapshot
        #: Relations the entry's magic program mentions: the only ones whose
        #: base-instance changes can move this entry's answers.
        self.known_relations: frozenset[str] = (
            compiled.program.relation_names() if compiled is not None else frozenset()
        )
        #: In a sharded session, the home shards this entry's answers can
        #: depend on (see :func:`repro.engine.sharding.goal_shard_footprint`);
        #: ``None`` means "possibly all".  Update facts routed to shards
        #: outside the footprint are mirrored into the entry's base-relation
        #: copy without any maintenance propagation.
        self.shard_footprint = shard_footprint
        self.hits = 0
        self.last_used = 0

    @property
    def answers(self) -> Instance:
        """The materialized answer state (magic program fixpoint)."""
        if self.fixpoint is not None:
            return self.fixpoint.materialized
        assert self.snapshot is not None
        return self.snapshot

    @property
    def maintained(self) -> bool:
        """Whether updates can advance this entry in place."""
        return self.fixpoint is not None

    def subsumes(self, positions: "tuple[int, ...]", binding: "Mapping[int, Path]") -> bool:
        """Whether this entry's call subsumes the call ``(positions, binding)``."""
        if not set(self.positions) <= set(positions):
            return False
        return all(
            binding.get(position) == value
            for position, value in zip(self.positions, self.values)
        )

    def seed_binding(self) -> "dict[int, Path]":
        """The entry's seed as a binding mapping."""
        return dict(zip(self.positions, self.values))

    def __repr__(self) -> str:
        seed = ", ".join(
            f"{position}={value}" for position, value in zip(self.positions, self.values)
        )
        kind = "maintained" if self.maintained else "snapshot"
        return f"TableEntry({self.output_relation}[{seed or 'all-free'}], {kind}, hits={self.hits})"


class AnswerTable:
    """The per-query table of evaluated subgoal calls, ordered by generality.

    Lookups return the *most specific* entry subsuming the call (fewest
    extra answers to filter away); insertion absorbs every entry the new
    one subsumes.  The table is bounded: beyond ``max_entries`` live
    entries the least recently used one is dropped (its call will simply
    re-evaluate on next demand).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        *,
        spec: "ShardingSpec | None" = None,
    ):
        if max_entries < 1:
            raise SubgoalTableError("an answer table needs room for at least one entry")
        self.max_entries = max_entries
        #: The sharding spec of the owning session, when serving is sharded:
        #: :meth:`apply_update` routes each update fact by its home shard and
        #: entries whose :attr:`TableEntry.shard_footprint` excludes that
        #: shard take the mirror-only fast path.
        self.spec = spec
        self._entries: list[TableEntry] = []
        self._clock = 0
        #: ``(entry description, reason)`` pairs dropped because an update
        #: could not be maintained through them — a bounded introspection
        #: log (:data:`EVICTION_LOG_LIMIT`); the entries themselves are
        #: released so their answer state can be collected.
        self.evictions: list[tuple[str, str]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TableEntry]:
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def _touch(self, entry: TableEntry) -> None:
        self._clock += 1
        entry.last_used = self._clock

    def lookup(
        self,
        positions: "tuple[int, ...]",
        binding: "Mapping[int, Path]",
        statistics: "EvaluationStatistics | None" = None,
    ) -> "TableEntry | None":
        """The most specific tabled call subsuming ``(positions, binding)``.

        A hit counts as a *detected repeated subsumed call*: the statistics
        counter ``subgoal_table_hits`` records it, and the caller serves the
        answer by filtering the entry — no evaluation.
        """
        best: "TableEntry | None" = None
        for entry in self._entries:
            if not entry.subsumes(positions, binding):
                continue
            if best is None or len(entry.positions) > len(best.positions):
                best = entry
        if best is not None:
            best.hits += 1
            self._touch(best)
            if statistics is not None:
                statistics.subgoal_table_hits += 1
        return best

    def insert(self, entry: TableEntry) -> "list[TableEntry]":
        """Add *entry*, absorbing the entries it subsumes.

        Returns the absorbed entries.  An absorbed entry's answers are a
        subset of the new one's, so every call it could serve is served by
        the new entry instead — keeping both would only grow the table.
        """
        absorbed = [
            existing
            for existing in self._entries
            if entry.subsumes(existing.positions, existing.seed_binding())
        ]
        for existing in absorbed:
            self._entries.remove(existing)
        self._entries.append(entry)
        self._touch(entry)
        while len(self._entries) > self.max_entries:
            coldest = min(self._entries, key=lambda candidate: candidate.last_used)
            self._entries.remove(coldest)
        return absorbed

    # -- maintenance --------------------------------------------------------------------

    def apply_update(
        self,
        additions: "Iterable[Fact]",
        retractions: "Iterable[Fact]",
        statistics: "EvaluationStatistics | None" = None,
    ) -> "list[tuple[TableEntry, str]]":
        """Advance every entry past a base-instance delta.

        Maintained entries are updated incrementally through their magic
        fixpoints, with the delta filtered to the relations each entry's
        program mentions (an unmentioned relation cannot move its answers).
        Snapshot entries survive deltas that miss their relations and are
        evicted otherwise; maintained entries whose update fails (budget
        breach, stray relations, …) are evicted with the reason recorded.
        Returns this call's evictions.
        """
        additions = list(additions)
        retractions = list(retractions)
        if not additions and not retractions:
            return []
        homes: "dict[Fact, int]" = {}
        if self.spec is not None and any(
            entry.shard_footprint is not None for entry in self._entries
        ):
            # One hash per fact, not one per (entry, fact) — and none at all
            # when no live entry has a footprint (recursive goals): the
            # footprint checks below sit on the per-update hot path.
            for fact in (*additions, *retractions):
                homes[fact] = self.spec.shard_of_fact(fact)
        evicted: list[tuple[TableEntry, str]] = []
        for entry in list(self._entries):
            relevant_added = [f for f in additions if f.relation in entry.known_relations]
            relevant_removed = [
                f for f in retractions if f.relation in entry.known_relations
            ]
            if not relevant_added and not relevant_removed:
                continue
            if self.spec is not None and entry.shard_footprint is not None:
                # Facts homed outside the entry's shard footprint provably
                # cannot join any body occurrence of its magic program: they
                # are mirrored into the entry's base-relation copy (which
                # doubles as the session's reference state) and skipped by
                # maintenance entirely.  Replicated relations are the
                # exception — the footprint proof skipped their occurrences
                # (every worker reads the full copy, so home ownership says
                # nothing about reachability), so their facts are always
                # maintained through the entry.
                replicated = self.spec.replicated
                inside_added = []
                inside_removed = []
                mirrored = 0
                for fact in relevant_removed:
                    if fact.relation in replicated or homes[fact] in entry.shard_footprint:
                        inside_removed.append(fact)
                    else:
                        entry.answers.discard_fact(fact, keep_empty=True)
                        mirrored += 1
                for fact in relevant_added:
                    if fact.relation in replicated or homes[fact] in entry.shard_footprint:
                        inside_added.append(fact)
                    else:
                        entry.answers.add_fact(fact)
                        mirrored += 1
                if statistics is not None:
                    statistics.shard_skipped_updates += mirrored
                relevant_added, relevant_removed = inside_added, inside_removed
                if not relevant_added and not relevant_removed:
                    continue
            if entry.fixpoint is None:
                evicted.append(
                    (
                        entry,
                        reason(
                            SNAPSHOT_NOT_MAINTAINED,
                            "snapshot entries cannot be maintained",
                        ),
                    )
                )
                self._entries.remove(entry)
                continue
            try:
                entry.fixpoint.update(
                    relevant_added, relevant_removed, statistics=statistics
                )
            except EvaluationError as error:
                evicted.append((entry, maintenance_reason(error)))
                self._entries.remove(entry)
        self.evictions.extend((repr(entry), reason) for entry, reason in evicted)
        del self.evictions[:-EVICTION_LOG_LIMIT]
        return evicted
