"""Stratified fixpoint evaluation of Sequence Datalog programs (Section 2.3).

The semantics of a program is defined stratum by stratum: each stratum is a
semipositive program applied to the result of the preceding strata; the
result of a semipositive program ``P`` on an instance ``I`` is the smallest
instance containing ``I`` and satisfying all rules of ``P``.

Two fixpoint strategies are provided:

* ``naive`` — every rule is re-evaluated against the full instance until no
  new fact is derived;
* ``seminaive`` — after the first round, rules with positive IDB body
  predicates are only re-evaluated with at least one of those predicates
  restricted to the facts newly derived in the previous round.

Both strategies produce the same result; the benchmark
``benchmarks/bench_engine_scaling.py`` compares their cost (an ablation of an
implementation design choice, not a paper experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal as TypingLiteral

from repro.engine.evaluation import RuleEvaluator
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import EvaluationError
from repro.model.instance import Instance
from repro.syntax.programs import Program, Stratum

__all__ = ["EvaluationStatistics", "evaluate_stratum", "evaluate_program", "Strategy"]

Strategy = TypingLiteral["naive", "seminaive"]


@dataclass
class EvaluationStatistics:
    """Counters accumulated while evaluating a program."""

    iterations: int = 0
    rule_applications: int = 0
    facts_derived: int = 0
    per_stratum_iterations: list[int] = field(default_factory=list)

    def merge_stratum(self, iterations: int) -> None:
        """Record the iteration count of one stratum."""
        self.per_stratum_iterations.append(iterations)
        self.iterations += iterations


def _apply_rules_naive(
    evaluators: list[RuleEvaluator],
    instance: Instance,
    statistics: EvaluationStatistics,
) -> set:
    new_facts = set()
    for evaluator in evaluators:
        statistics.rule_applications += 1
        for fact in evaluator.derive(instance):
            if fact not in instance:
                new_facts.add(fact)
    return new_facts


def _apply_rules_seminaive(
    evaluators: list[RuleEvaluator],
    instance: Instance,
    delta: Instance,
    statistics: EvaluationStatistics,
) -> set:
    """Evaluate each rule requiring at least one IDB body atom to match the delta."""
    delta_names = delta.relation_names
    new_facts = set()
    for evaluator in evaluators:
        positions = [
            position
            for name, spots in evaluator.predicate_positions.items()
            if name in delta_names
            for position in spots
        ]
        if not positions:
            # No body predicate can match a new fact, so this rule cannot
            # derive anything new this round.
            continue
        for position in positions:
            statistics.rule_applications += 1
            for fact in evaluator.derive(instance, frontier={position: delta}):
                if fact not in instance:
                    new_facts.add(fact)
    return new_facts


def evaluate_stratum(
    stratum: Stratum,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    strategy: Strategy = "seminaive",
    statistics: EvaluationStatistics | None = None,
) -> Instance:
    """Compute the fixpoint of one stratum, returning the enlarged instance.

    The input *instance* is not modified.
    """
    if statistics is None:
        statistics = EvaluationStatistics()
    current = instance.copy()
    for rule in stratum:
        current.ensure_relation(rule.head.name)

    evaluators = [RuleEvaluator(rule, limits) for rule in stratum]

    iterations = 0
    # First round: all rules against the full instance.
    iterations += 1
    limits.check_iterations(iterations)
    delta_facts = _apply_rules_naive(evaluators, current, statistics)
    for fact in delta_facts:
        current.add_fact(fact)
    statistics.facts_derived += len(delta_facts)
    limits.check_fact_count(current.fact_count())

    while delta_facts:
        iterations += 1
        limits.check_iterations(iterations)
        if strategy == "seminaive":
            delta = Instance(delta_facts)
            new_facts = _apply_rules_seminaive(evaluators, current, delta, statistics)
        elif strategy == "naive":
            new_facts = _apply_rules_naive(evaluators, current, statistics)
        else:
            raise EvaluationError(f"unknown evaluation strategy {strategy!r}")
        for fact in new_facts:
            current.add_fact(fact)
        statistics.facts_derived += len(new_facts)
        limits.check_fact_count(current.fact_count())
        delta_facts = new_facts

    statistics.merge_stratum(iterations)
    return current


def evaluate_program(
    program: Program,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    strategy: Strategy = "seminaive",
    statistics: EvaluationStatistics | None = None,
) -> Instance:
    """Evaluate *program* on *instance*, returning EDB plus all IDB relations.

    The strata are applied in order, each as a semipositive program over the
    result of the preceding ones (Section 2.3).  If any stratum exceeds the
    limits, :class:`~repro.errors.EvaluationBudgetExceeded` propagates.
    """
    current = instance.copy()
    for stratum in program.strata:
        current = evaluate_stratum(
            stratum, current, limits, strategy=strategy, statistics=statistics
        )
    for name in program.idb_relation_names():
        current.ensure_relation(name)
    return current
