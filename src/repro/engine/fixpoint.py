"""Stratified fixpoint evaluation of Sequence Datalog programs (Section 2.3).

The semantics of a program is defined stratum by stratum: each stratum is a
semipositive program applied to the result of the preceding strata; the
result of a semipositive program ``P`` on an instance ``I`` is the smallest
instance containing ``I`` and satisfying all rules of ``P``.

Two fixpoint strategies are provided:

* ``naive`` — every rule is re-evaluated against the full instance until no
  new fact is derived;
* ``seminaive`` — after the first round, only rules whose body mentions a
  relation that changed in the previous round are re-evaluated, each with at
  least one of those body predicates restricted to the newly derived facts.
  The delta is kept as one long-lived instance whose per-relation row sets
  are swapped in place between rounds (no per-round instance rebuild).

Orthogonally, rule bodies run in one of two execution modes (see
:mod:`repro.engine.evaluation`): ``"indexed"`` (bound-aware greedy planning
over the storage layer's indexes, the default) or ``"scan"`` (the seed
nested-loop strategy).  All four combinations produce the same result; the
benchmarks ``benchmarks/bench_engine_scaling.py`` and
``benchmarks/bench_join_planning.py`` compare their costs (ablations of
implementation design choices, not paper experiments — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal as TypingLiteral

from repro.engine.evaluation import ExecutionMode, RuleEvaluator
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import EvaluationError
from repro.model.instance import Fact, Instance
from repro.syntax.programs import Program, Stratum
from repro.syntax.rules import Rule

__all__ = [
    "EvaluationStatistics",
    "ProgramEvaluators",
    "evaluate_stratum",
    "evaluate_program",
    "propagate_delta",
    "Strategy",
]

Strategy = TypingLiteral["naive", "seminaive"]


@dataclass
class EvaluationStatistics:
    """Counters accumulated while evaluating a program.

    ``rule_applications`` counts how many times a rule was evaluated in a
    round (at most once per rule per round, for both strategies);
    ``delta_restricted_applications`` additionally counts the per-delta-
    position body evaluations of the semi-naive strategy, which may exceed
    the rule count for rules with several IDB body predicates.
    ``extension_attempts`` counts the candidate rows handed to the
    associative matcher while extending valuations through body predicates —
    the nested-loop work the indexed execution mode exists to avoid.
    ``plans_compiled`` and ``plan_cache_hits`` split the indexed mode's body
    evaluations into those that ran the greedy planner and those that reused
    a compiled plan (see :class:`~repro.engine.evaluation.RuleEvaluator`).

    The maintenance counters belong to incremental view maintenance
    (:mod:`repro.engine.maintenance`): ``maintenance_rounds`` counts the
    delta-propagation rounds run across the counting, overdeletion,
    rederivation, and insertion phases; ``rederivation_attempts`` the
    head-bound body probes of the delete–rederive step; and
    ``facts_retracted`` the facts that net-disappeared from a maintained
    materialization (EDB retractions plus derived facts that lost their last
    support).

    ``subgoal_table_hits`` counts goal-mode calls answered from a session's
    subgoal answer table (:mod:`repro.engine.tabling`) — repeated subsumed
    calls detected and served with zero evaluation.

    The sharding counters belong to shard-parallel evaluation
    (:mod:`repro.engine.sharding`): ``shard_rounds`` counts the partitioned
    semi-naive rounds run, ``cross_shard_facts`` the delta rows exchanged
    between workers (rows a shard derived that another shard's replica had
    to receive), and ``shard_skipped_updates`` the update facts a tabled
    goal's shard footprint proved irrelevant and mirrored without any
    maintenance propagation.  ``exchange_batches`` counts the packed
    id-block dispatches a process executor actually sent (deltas accumulate
    across micro-rounds and flush once per exchange barrier) and
    ``exchanged_bytes`` the id payload those dispatches carried (array
    itemsize per interned id, deterministic — independent of pickling
    details).
    """

    iterations: int = 0
    rule_applications: int = 0
    delta_restricted_applications: int = 0
    facts_derived: int = 0
    extension_attempts: int = 0
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    maintenance_rounds: int = 0
    rederivation_attempts: int = 0
    facts_retracted: int = 0
    subgoal_table_hits: int = 0
    shard_rounds: int = 0
    cross_shard_facts: int = 0
    shard_skipped_updates: int = 0
    exchange_batches: int = 0
    exchanged_bytes: int = 0
    per_stratum_iterations: list[int] = field(default_factory=list)

    #: The work counters a per-shard (or per-worker) statistics object feeds
    #: back into the round's aggregate via :meth:`absorb_counters`.
    WORK_COUNTERS = (
        "rule_applications",
        "delta_restricted_applications",
        "extension_attempts",
        "plans_compiled",
        "plan_cache_hits",
        "rederivation_attempts",
    )

    def merge_stratum(self, iterations: int) -> None:
        """Record the iteration count of one stratum."""
        self.per_stratum_iterations.append(iterations)
        self.iterations += iterations

    def absorb_counters(self, other: "EvaluationStatistics") -> None:
        """Fold another object's per-shard work counters into this one.

        Only the :data:`WORK_COUNTERS` are summed: round/iteration counts
        are owned by the coordinating loop (a partitioned round is still one
        round), and the derived/retracted fact tallies are recorded on the
        net results by the owner.
        """
        for name in self.WORK_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class ProgramEvaluators:
    """A cache of :class:`RuleEvaluator` objects, keyed by rule.

    Rule evaluators carry compiled join plans; reusing them across strata,
    rounds, and — through :class:`~repro.engine.query.QuerySession` —
    repeated queries keeps the planner out of the evaluation inner loop.
    """

    def __init__(
        self,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        *,
        execution: ExecutionMode = "indexed",
    ):
        self.limits = limits
        self.execution: ExecutionMode = execution
        self._evaluators: dict[Rule, RuleEvaluator] = {}

    def evaluator(self, rule: Rule) -> RuleEvaluator:
        """The cached evaluator for *rule* (built on first use)."""
        found = self._evaluators.get(rule)
        if found is None:
            found = self._evaluators[rule] = RuleEvaluator(
                rule, self.limits, execution=self.execution
            )
        return found

    def for_stratum(self, stratum: Stratum) -> list[RuleEvaluator]:
        """Evaluators for every rule of *stratum*, in order."""
        return [self.evaluator(rule) for rule in stratum]


def _apply_rules_naive(
    evaluators: list[RuleEvaluator],
    instance: Instance,
    statistics: EvaluationStatistics,
) -> set:
    new_facts = set()
    for evaluator in evaluators:
        statistics.rule_applications += 1
        derived = evaluator.derive(instance, statistics=statistics)
        if derived:
            # Every fact of one application carries the rule's head relation,
            # so resolve the existing row set once instead of per fact.
            storage = instance.storage(evaluator.rule.head.name)
            existing = storage.rows if storage is not None else ()
            new_facts.update(
                [fact for fact in derived if fact.paths not in existing]
            )
    return new_facts


def _apply_rules_seminaive(
    evaluators: list[RuleEvaluator],
    instance: Instance,
    delta: Instance,
    changed: "set[str] | frozenset[str]",
    statistics: EvaluationStatistics,
) -> set:
    """Evaluate each affected rule with one body atom restricted to the delta.

    Rules whose bodies mention none of the *changed* relations are skipped
    entirely: no new fact can satisfy any of their body atoms.
    """
    new_facts = set()
    for evaluator in evaluators:
        if not (evaluator.body_relation_names & changed):
            continue
        statistics.rule_applications += 1
        for name in evaluator.predicate_positions.keys() & changed:
            for position in evaluator.predicate_positions[name]:
                statistics.delta_restricted_applications += 1
                derived = evaluator.derive(
                    instance, frontier={position: delta}, statistics=statistics
                )
                if derived:
                    # One head relation per rule: resolve its row set once.
                    storage = instance.storage(evaluator.rule.head.name)
                    existing = storage.rows if storage is not None else ()
                    new_facts.update(
                        [fact for fact in derived if fact.paths not in existing]
                    )
    return new_facts


def propagate_delta(
    evaluators: list[RuleEvaluator],
    current: Instance,
    delta_facts: "set[Fact]",
    limits: EvaluationLimits = DEFAULT_LIMITS,
    statistics: "EvaluationStatistics | None" = None,
    *,
    strategy: Strategy = "seminaive",
    iterations_before: int = 0,
    collect: bool = False,
) -> tuple[int, set]:
    """Close *current* under *evaluators*, starting from already-applied deltas.

    This is the semi-naive core shared by full evaluation
    (:func:`evaluate_stratum` calls it after its first naive round) and
    incremental maintenance (the insertion phase seeds it with the update's
    added facts).  *delta_facts* must already be present in *current*; the
    loop repeatedly evaluates the rules whose bodies mention the delta's
    relations, restricted to the delta, until no new fact is derived.

    Returns ``(rounds run, facts added)`` — the added set is only
    accumulated when *collect* is true (maintenance needs it; the full-
    evaluation hot path should not pay an extra union per round).
    *iterations_before* offsets the iteration-budget check so a caller that
    already ran rounds against the same budget keeps one coherent count.
    """
    if statistics is None:
        statistics = EvaluationStatistics()
    iterations = iterations_before
    added: set = set()
    # One delta instance lives across all rounds; its relation storages are
    # refilled in place each round rather than rebuilt.
    delta = Instance()
    while delta_facts:
        iterations += 1
        limits.check_iterations(iterations)
        if strategy == "seminaive":
            delta.replace_with(delta_facts)
            changed = {fact.relation for fact in delta_facts}
            new_facts = _apply_rules_seminaive(evaluators, current, delta, changed, statistics)
        elif strategy == "naive":
            new_facts = _apply_rules_naive(evaluators, current, statistics)
        else:
            raise EvaluationError(f"unknown evaluation strategy {strategy!r}")
        for fact in new_facts:
            current.add_fact(fact)
        statistics.facts_derived += len(new_facts)
        limits.check_fact_count(current.fact_count())
        if collect:
            added |= new_facts
        delta_facts = new_facts
    return iterations - iterations_before, added


def evaluate_stratum(
    stratum: Stratum,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    strategy: Strategy = "seminaive",
    execution: ExecutionMode = "indexed",
    statistics: EvaluationStatistics | None = None,
    evaluators: ProgramEvaluators | None = None,
    copy: bool = True,
) -> Instance:
    """Compute the fixpoint of one stratum, returning the enlarged instance.

    The input *instance* is not modified unless ``copy=False``, which lets
    :func:`evaluate_program` grow one working copy across chained strata
    instead of re-copying the ever-larger instance per stratum.  A shared
    :class:`ProgramEvaluators` carries compiled rule plans across calls.
    """
    if statistics is None:
        statistics = EvaluationStatistics()
    current = instance.copy() if copy else instance
    for rule in stratum:
        current.ensure_relation(rule.head.name)

    if evaluators is not None:
        # The evaluators carry their own limits/execution; a caller passing a
        # conflicting configuration would silently get the cache's one.
        if evaluators.execution != execution or evaluators.limits != limits:
            raise EvaluationError(
                f"the supplied ProgramEvaluators were built for "
                f"execution={evaluators.execution!r} with limits {evaluators.limits}, "
                f"but this call asks for execution={execution!r} with limits {limits}"
            )
        stratum_evaluators = evaluators.for_stratum(stratum)
    else:
        stratum_evaluators = [
            RuleEvaluator(rule, limits, execution=execution) for rule in stratum
        ]

    if strategy not in ("naive", "seminaive"):
        raise EvaluationError(f"unknown evaluation strategy {strategy!r}")

    # First round: all rules against the full instance.
    iterations = 1
    limits.check_iterations(iterations)
    delta_facts = _apply_rules_naive(stratum_evaluators, current, statistics)
    for fact in delta_facts:
        current.add_fact(fact)
    statistics.facts_derived += len(delta_facts)
    limits.check_fact_count(current.fact_count())

    rounds, _ = propagate_delta(
        stratum_evaluators,
        current,
        delta_facts,
        limits,
        statistics,
        strategy=strategy,
        iterations_before=iterations,
    )
    statistics.merge_stratum(iterations + rounds)
    return current


def evaluate_program(
    program: Program,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    strategy: Strategy = "seminaive",
    execution: ExecutionMode = "indexed",
    statistics: EvaluationStatistics | None = None,
    seed_facts: "Iterable[Fact] | None" = None,
    evaluators: ProgramEvaluators | None = None,
) -> Instance:
    """Evaluate *program* on *instance*, returning EDB plus all IDB relations.

    The strata are applied in order, each as a semipositive program over the
    result of the preceding ones (Section 2.3).  The input instance is copied
    exactly once; the working copy then grows in place through the chained
    strata.  If any stratum exceeds the limits,
    :class:`~repro.errors.EvaluationBudgetExceeded` propagates.

    *seed_facts* are injected into the working copy before the first stratum
    — this is how goal-directed evaluation plants the magic fact describing
    the query's bindings (see :mod:`repro.transform.magic`).  *evaluators*
    optionally shares compiled rule plans across calls (repeated queries over
    the same program reuse both the static orders and the greedy sequences).
    """
    current = instance.copy()
    if seed_facts is not None:
        for fact in seed_facts:
            current.add_fact(fact)
    if evaluators is None:
        evaluators = ProgramEvaluators(limits, execution=execution)
    for stratum in program.strata:
        current = evaluate_stratum(
            stratum,
            current,
            limits,
            strategy=strategy,
            execution=execution,
            statistics=statistics,
            evaluators=evaluators,
            copy=False,
        )
    for name in program.idb_relation_names():
        current.ensure_relation(name)
    return current
