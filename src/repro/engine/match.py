"""Associative matching of path expressions against concrete paths.

This is the computational heart of Sequence Datalog evaluation: given a path
expression ``e``, a concrete path ``p``, and a partial valuation ``ν``, the
matcher enumerates every extension of ``ν`` under which ``e`` denotes ``p``.

Because concatenation is associative, an unbound path variable may absorb any
number of elements; the matcher therefore enumerates splits, pruned by a
lower bound on the length still required by the remainder of the expression.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.engine.valuation import Valuation
from repro.model.instance import Fact
from repro.model.terms import Packed, Path, Value, is_atomic_value
from repro.syntax.expressions import (
    AtomVariable,
    Item,
    PackedExpression,
    PathExpression,
    PathVariable,
)
from repro.syntax.literals import Predicate

__all__ = ["match_expression", "match_components", "match_fact"]


def match_expression(
    expression: PathExpression,
    path: Path,
    valuation: Valuation = Valuation.EMPTY,
) -> Iterator[Valuation]:
    """Yield every extension of *valuation* making *expression* denote *path*."""
    yield from _match_items(expression.items, path.elements, 0, 0, valuation)


def match_components(
    expressions: Sequence[PathExpression],
    paths: Sequence[Path],
    valuation: Valuation = Valuation.EMPTY,
) -> Iterator[Valuation]:
    """Match a tuple of expressions component-wise against a tuple of paths."""
    if len(expressions) != len(paths):
        return
    if not expressions:
        yield valuation
        return

    def recurse(index: int, current: Valuation) -> Iterator[Valuation]:
        if index == len(expressions):
            yield current
            return
        for extended in match_expression(expressions[index], paths[index], current):
            yield from recurse(index + 1, extended)

    yield from recurse(0, valuation)


def match_fact(
    predicate: Predicate,
    fact: Fact,
    valuation: Valuation = Valuation.EMPTY,
) -> Iterator[Valuation]:
    """Match a body predicate against a fact of the same relation name."""
    if predicate.name != fact.relation or predicate.arity != fact.arity:
        return
    yield from match_components(predicate.components, fact.paths, valuation)


# -- internal recursive matcher -------------------------------------------------------------------


def _min_remaining_length(items: Sequence[Item], start: int) -> int:
    """Lower bound on the number of path elements the items from *start* require."""
    total = 0
    for index in range(start, len(items)):
        if not isinstance(items[index], PathVariable):
            total += 1
    return total


def _match_items(
    items: Sequence[Item],
    values: Sequence[Value],
    item_index: int,
    value_index: int,
    valuation: Valuation,
) -> Iterator[Valuation]:
    if item_index == len(items):
        if value_index == len(values):
            yield valuation
        return

    item = items[item_index]
    remaining = len(values) - value_index

    if isinstance(item, str):
        if remaining >= 1 and values[value_index] == item:
            yield from _match_items(items, values, item_index + 1, value_index + 1, valuation)
        return

    if isinstance(item, AtomVariable):
        if remaining < 1:
            return
        value = values[value_index]
        if not is_atomic_value(value):
            return
        bound = valuation.get(item)
        if bound is not None:
            if bound != value:
                return
            extended = valuation
        else:
            extended = valuation.bind(item, value)
        yield from _match_items(items, values, item_index + 1, value_index + 1, extended)
        return

    if isinstance(item, PackedExpression):
        if remaining < 1:
            return
        value = values[value_index]
        if not isinstance(value, Packed):
            return
        for inner in _match_items(
            item.inner.items, value.contents.elements, 0, 0, valuation
        ):
            yield from _match_items(items, values, item_index + 1, value_index + 1, inner)
        return

    if isinstance(item, PathVariable):
        bound = valuation.get(item)
        if bound is not None:
            segment: tuple[Value, ...] = bound.elements  # type: ignore[union-attr]
            end = value_index + len(segment)
            if end <= len(values) and tuple(values[value_index:end]) == segment:
                yield from _match_items(items, values, item_index + 1, end, valuation)
            return
        # Unbound: try every admissible split, leaving at least enough elements
        # for the rest of the expression.
        tail_minimum = _min_remaining_length(items, item_index + 1)
        longest = len(values) - tail_minimum
        for end in range(value_index, longest + 1):
            segment_path = Path(values[value_index:end])
            extended = valuation.bind(item, segment_path)
            yield from _match_items(items, values, item_index + 1, end, extended)
        return

    raise TypeError(f"unexpected path expression item {item!r}")  # pragma: no cover
