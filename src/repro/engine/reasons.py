"""The closed set of machine-readable fallback and eviction reason codes.

Every stringly-typed reason the engine emits — a
:class:`~repro.engine.query.QueryResult.fallback_reason`, an
:class:`~repro.engine.query.UpdateResult.fallback_reason`, an
:class:`~repro.engine.tabling.AnswerTable` eviction reason, or a
:class:`~repro.service.core.SessionRegistry` session-eviction reason — is
formatted as either a bare code or ``<code>: <detail>``.  The code names the
*class* of fallback (stable, greppable, safe to branch on); the detail is
human-oriented context that may change freely.  :func:`reason_code` parses a
reason back to its code, and the test suite asserts every emitted reason
parses to a member of :data:`REASON_CODES` — adding a new reason without
registering it here is a test failure, which is the point: callers dispatch
on these strings, so the set must stay closed and documented.

Codes
-----

``rewrite_unsupported``
    The magic-set rewriting refused the goal (expanding magic recursion even
    after generalization); goal-directed requests fall back to full
    evaluation and the refusal is cached per adornment.
``goal_budget_exceeded``
    A goal-directed evaluation breached the session's evaluation limits;
    the call fell back to full evaluation.
``generalization_too_large``
    The goal was rewritten for a generalized adornment whose sweep the
    session's :attr:`generalization_limit` prices as worse than full
    evaluation (see ``QuerySession._generalization_guard``).
``maintenance_unsupported``
    Incremental maintenance cannot soundly cover the update or program
    shape (stray relations, multi-stratum heads, unstratified negation);
    the materialization (or table entry) is dropped and rebuilt on demand.
``maintenance_budget_exceeded``
    Maintenance itself breached the evaluation limits mid-update; the
    half-updated artifact is dropped rather than served inconsistent.
``snapshot_not_maintained``
    A snapshot table entry (one whose magic program could not be
    maintained) was reached by an update; snapshots are serve-only, so the
    entry is evicted and re-evaluates on next demand.
``snapshot_unsupported``
    A persisted session snapshot parsed but declared a format or version
    this build does not understand; the restore is refused with
    :class:`~repro.errors.SnapshotUnsupportedError` instead of silently
    falling back to older state or crashing in the decoder.
``tenant_capacity``
    The service registry evicted the tenant's least-recently-used session
    to admit a new one within the tenant's session budget.
``service_capacity``
    As ``tenant_capacity``, but for the service-wide session budget.
``admission_pressure``
    The service registry evicted a session of the tenant generating the
    most shed work (admission pressure) in preference to the global LRU
    victim, keeping well-behaved tenants resident under a hostile load.
"""

from repro.errors import EvaluationBudgetExceeded

REWRITE_UNSUPPORTED = "rewrite_unsupported"
GOAL_BUDGET_EXCEEDED = "goal_budget_exceeded"
GENERALIZATION_TOO_LARGE = "generalization_too_large"
MAINTENANCE_UNSUPPORTED = "maintenance_unsupported"
MAINTENANCE_BUDGET_EXCEEDED = "maintenance_budget_exceeded"
SNAPSHOT_NOT_MAINTAINED = "snapshot_not_maintained"
SNAPSHOT_UNSUPPORTED = "snapshot_unsupported"
TENANT_CAPACITY = "tenant_capacity"
SERVICE_CAPACITY = "service_capacity"
ADMISSION_PRESSURE = "admission_pressure"

#: Every code the engine may emit.  Closed by test: an emitted reason whose
#: code is not listed here fails ``tests/engine/test_reasons.py``.
REASON_CODES = frozenset(
    {
        REWRITE_UNSUPPORTED,
        GOAL_BUDGET_EXCEEDED,
        GENERALIZATION_TOO_LARGE,
        MAINTENANCE_UNSUPPORTED,
        MAINTENANCE_BUDGET_EXCEEDED,
        SNAPSHOT_NOT_MAINTAINED,
        SNAPSHOT_UNSUPPORTED,
        TENANT_CAPACITY,
        SERVICE_CAPACITY,
        ADMISSION_PRESSURE,
    }
)


def reason(code: str, detail: "str | None" = None) -> str:
    """Format a reason string: the bare *code*, or ``code: detail``."""
    assert code in REASON_CODES, f"unregistered reason code {code!r}"
    return code if detail is None else f"{code}: {detail}"


def reason_code(value: str) -> str:
    """The code of a formatted reason (everything before the first colon)."""
    return value.split(":", 1)[0].strip()


def maintenance_reason(error: Exception) -> str:
    """Classify a maintenance failure: budget breach vs. unsupported shape."""
    code = (
        MAINTENANCE_BUDGET_EXCEEDED
        if isinstance(error, EvaluationBudgetExceeded)
        else MAINTENANCE_UNSUPPORTED
    )
    return reason(code, str(error))
