"""Shard-parallel fixpoint evaluation: partitioned deltas, replicated state.

This is the scaling step the ROADMAP's north star asks for: the serving
path was made fully incremental (maintained materializations + tabled
subgoals), leaving the single-process ceiling as the remaining bottleneck.
The sharded engine splits the *work* of every semi-naive round across
``shard_count`` workers:

* each relation's rows have a **home shard**, decided by the hash-partition
  layer (:mod:`repro.storage.partition`);
* every round's delta facts are partitioned by home shard, and each worker
  runs the delta-restricted rule applications for *its* partition only —
  through the existing :class:`~repro.engine.evaluation.RuleEvaluator` and
  its compiled-plan cache, so the per-shard inner loop is exactly the
  single-process one;
* between rounds the workers exchange the **cross-shard delta rows**: a
  worker applies its own derivations locally and receives only the rows the
  *other* shards derived (the replicated update stream), so the next round's
  frontier is again partitioned.

Joins in Sequence Datalog bodies are not generally key-aligned (a rule may
join on any argument, or on path *prefixes*), so by default each worker
keeps a full **replica** of the instance for join completeness — sharding
partitions the delta-restricted work and the ownership bookkeeping, not the
readable state.  The consumer-aligned planner
(:func:`repro.storage.partition.choose_sharding_plan`) upgrades that
default per stratum: a stratum proved ``aligned`` runs on bare partitions,
and a stratum proved ``local`` (every rule reads only rows co-located with
its head, small relations replicated to every worker) additionally runs
whole fixpoints worker-resident — micro-rounds without exchange barriers,
foreign derivations dropped because the home worker derives its own copy.
The partitioned view itself is materialized as a :class:`ShardedInstance`
(one :class:`~repro.model.instance.Instance` per shard) whose balance the
benchmarks assert on.

Two :class:`ParallelExecutor` backends run the rounds:

* :class:`SequentialExecutor` — in-process: the "workers" share the
  authoritative instance and run in shard order.  Deterministic, no copies,
  no pickling; this is the mode the property tests drive, and it must be
  indistinguishable from single-process evaluation (``sharded ≡ single``).
* :class:`ProcessExecutor` — one single-worker ``concurrent.futures``
  process pool per shard (pinning shard *i*'s tasks to process *i*, which a
  shared pool would not guarantee).  Each worker is initialized with a
  pickled snapshot of the instance and caught up between rounds with the
  queued cross-shard rows; small rounds (below
  :attr:`ProcessExecutor.min_round_rows`) run in-process on the parent,
  because for serving-sized deltas the pickling would dwarf the work.

:func:`goal_shard_footprint` is the tabling hook: the sound (and
deliberately narrow) static analysis that lets a tabled subgoal record which
shards its answers can possibly depend on, so updates routed elsewhere are
mirrored without any maintenance propagation.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Collection, Iterable

from repro.engine.evaluation import ExecutionMode
from repro.engine.fixpoint import (
    EvaluationStatistics,
    ProgramEvaluators,
    _apply_rules_seminaive,
    evaluate_program,
)
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import EvaluationError
from repro.model.instance import Fact, Instance
from repro.model.terms import Packed, Path
from repro.storage.partition import (
    ShardingPlan,
    ShardingSpec,
    plan_for_spec,
    repartition_pays,
    stable_hash_path,
)
from repro.syntax.programs import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.transform.magic import MagicProgram

__all__ = [
    "ParallelExecutor",
    "ProcessExecutor",
    "SequentialExecutor",
    "ShardedFixpoint",
    "ShardedInstance",
    "goal_shard_footprint",
]


class ShardedInstance:
    """A hash-partitioned view of an instance: one sub-instance per shard.

    Every fact lives in exactly one shard (its home, per the spec's shard
    keys); the union of the shards is extensionally the tracked instance.
    The sharded fixpoints maintain one of these alongside the authoritative
    instance so the partition — sizes, balance, per-shard row sets — is
    always inspectable without re-routing the whole fact set.
    """

    __slots__ = ("spec", "shards")

    def __init__(self, spec: ShardingSpec, shards: "list[Instance] | None" = None):
        self.spec = spec
        if shards is None:
            shards = [Instance() for _ in range(spec.shard_count)]
        elif len(shards) != spec.shard_count:
            raise EvaluationError(
                f"expected {spec.shard_count} shards, got {len(shards)}"
            )
        self.shards = shards

    @classmethod
    def from_instance(cls, instance: Instance, spec: ShardingSpec) -> "ShardedInstance":
        """Route every fact of *instance* to its home shard."""
        sharded = cls(spec)
        for name in instance.relation_names:
            for shard, rows in enumerate(spec.partition_rows(name, instance.relation(name))):
                if rows:
                    sharded.shards[shard].set_relation_rows(name, rows)
        return sharded

    def shard_of(self, fact: Fact) -> int:
        """The home shard of *fact*."""
        return self.spec.shard_of_fact(fact)

    def add_fact(self, fact: Fact) -> None:
        """Insert *fact* into its home shard."""
        self.shards[self.spec.shard_of_fact(fact)].add_fact(fact)

    def discard_fact(self, fact: Fact) -> None:
        """Remove *fact* from its home shard (the relation stays present)."""
        self.shards[self.spec.shard_of_fact(fact)].discard_fact(fact, keep_empty=True)

    def shard_sizes(self) -> list[int]:
        """Fact counts per shard — the balance the benchmarks assert on."""
        return [shard.fact_count() for shard in self.shards]

    def fact_count(self) -> int:
        return sum(shard.fact_count() for shard in self.shards)

    def __len__(self) -> int:
        return self.fact_count()

    def merged(self) -> Instance:
        """The union of all shards as one plain instance."""
        merged = Instance()
        for shard in self.shards:
            for name in shard.relation_names:
                for row in shard.relation(name):
                    merged.add_fact(Fact(name, row))
        return merged

    def __repr__(self) -> str:
        return f"ShardedInstance({self.spec.shard_count} shards, sizes={self.shard_sizes()})"


# -- executors -------------------------------------------------------------------------


class ParallelExecutor:
    """How shard-partitioned rounds actually execute.

    The base protocol: :meth:`attach` binds the executor to a program and an
    instance snapshot, :meth:`sync` records facts the parent applied to the
    authoritative instance (so replicas, if any, can catch up), and
    :meth:`round` runs one delta-restricted semi-naive round per shard —
    returning ``None`` to mean "no remote workers ran; the caller should run
    the round in-process".  The sequential executor is exactly that
    ``None``: shard-partitioned work executed deterministically in shard
    order on the parent, sharing the authoritative instance.
    """

    kind = "sequential"

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise EvaluationError(f"shard_count must be at least 1, got {shard_count}")
        self.shard_count = shard_count
        self._exchanged = 0

    def attach(
        self,
        program: Program,
        limits: EvaluationLimits,
        execution: ExecutionMode,
        instance: Instance,
        *,
        spec: "ShardingSpec | None" = None,
        partitioned: bool = False,
        partitions: "list[Instance] | None" = None,
        modes: "tuple[str, ...]" = (),
    ) -> None:
        """(Re)bind to *program* over a snapshot of *instance*.

        *partitioned* asserts that every stratum of *program* runs sound on
        bare partitions under *spec* (every mode in the sharding plan is
        ``aligned`` or ``local``): workers then hold only their own
        partition of every non-replicated relation instead of a full
        replica (relations in ``spec.replicated`` are copied to every
        worker in full), and catch-up traffic routes each row to its home
        shard only.  *partitions* optionally hands over an already-routed
        per-shard split of *instance* (the owner's mirror), so attaching
        does not hash-partition the same rows a second time.  *modes* is
        the plan's per-stratum mode tuple — ``local`` strata may run
        worker-resident fixpoints (:meth:`run_stratum`) and worker-local
        DRed phases (:meth:`dred`).
        """

    def sync(
        self,
        added: "Collection[Fact]",
        removed: "Collection[Fact]" = (),
        *,
        derived_by: "list[set[Fact]] | None" = None,
    ) -> None:
        """Record a delta the parent applied, for replica catch-up (if any).

        *derived_by* names, per shard, the facts that shard's worker derived
        (and already applied locally) this round — they are excluded from
        that worker's catch-up batch, so only the *cross-shard* rows travel.
        """

    def take_exchanged(self) -> int:
        """Rows actually shipped to workers since the last call (and reset).

        The sequential executor shares the authoritative instance, so
        nothing ever travels and this stays zero; the process executor
        counts catch-up rows at dispatch time.
        """
        count = self._exchanged
        self._exchanged = 0
        return count

    def take_exchange_stats(self) -> "tuple[int, int]":
        """``(exchange_batches, exchanged_bytes)`` since the last call (and reset).

        Batches count parent→worker dispatches (deltas queue up and flush
        once per exchange barrier); bytes count the id payload shipped in
        either direction, 8 per interned id — a deterministic measure that
        does not depend on pickling details.  In-process executors never
        ship anything.
        """
        return (0, 0)

    def round(
        self,
        stratum_index: int,
        frontier_parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "list[set[Fact]] | None":
        """Run one semi-naive round, or return ``None`` for an in-process round."""
        return None

    def run_stratum(
        self,
        stratum_index: int,
        frontier_parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "tuple[list[set[Fact]], int] | None":
        """Run a whole delta cascade worker-resident (``local`` strata only).

        Returns per-shard net-new facts plus the deepest worker round
        count, or ``None`` when the caller should fall back to barriered
        :meth:`round` / in-process rounds.
        """
        return None

    def dred(
        self,
        stratum_index: int,
        changed: "dict[str, tuple[set, set]]",
        seed_parts: "list[set[Fact]]",
        pinned_parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "tuple[list[tuple[set[Fact], set[Fact]]], int] | None":
        """Run the overdeletion/rederivation phases worker-local, or ``None``.

        *changed* maps each changed relation to its ``(added_rows,
        removed_rows)`` sets (the workers rebuild the pre-update overlay
        from them); *seed_parts* routes the removed body facts, broadcast
        for replicated relations.  Returns per-shard ``(overdeleted,
        rederived)`` pairs plus the overdeletion round count.
        """
        return None

    def counting(
        self,
        stratum_index: int,
        changed: "dict[str, tuple[set, set]]",
        pivot_parts: "list[dict[str, tuple[set, set]]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "list[dict[Fact, int]] | None":
        """Run a counting stratum's signed delta joins worker-local, or ``None``.

        *changed* carries the full per-relation delta (overlay rebuild);
        *pivot_parts* routes each shard its home slice of the pivot rows.
        Returns per-shard ``fact → signed count`` dicts whose sum is the
        stratum's exact derivation-count delta.
        """
        return None

    def repartition(self, keys: "dict[str, int]", rows_by_name: "dict[str, Collection]") -> None:
        """Adopt new shard keys and redistribute *rows_by_name* accordingly.

        The caller has already updated the spec's key table; in-process
        executors share the authoritative instance, so only the process
        executor moves rows.
        """

    @property
    def supports_router(self) -> bool:
        """Whether whole-stratum router-mode fixpoints can run here (see
        :class:`ProcessExecutor`); the in-process executors never need them."""
        return False

    @property
    def supports_worker_goals(self) -> bool:
        """Whether partition-local goal queries can run on a resident worker."""
        return False

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SequentialExecutor(ParallelExecutor):
    """Deterministic in-process execution: shards run one after another.

    This is the reference mode — zero copies, zero pickling, bit-identical
    to single-process evaluation — used by tests and as the default for
    :class:`~repro.engine.query.QuerySession` sharding.
    """


# -- the wire codec --------------------------------------------------------------------
#
# Facts cross the process boundary constantly (catch-up batches, frontiers,
# derived rows); pickling ``Fact``/``Path`` objects costs ~8× the bytes and
# time of the equivalent plain tuples (per-object reduce overhead).  The
# wire format is therefore two-layered:
#
# * a path *definition* is nested builtin tuples only — a tuple whose items
#   are atoms (``str``) or packed values (a 1-tuple wrapping the inner
#   path); this is the only self-describing form and it crosses each link
#   exactly once per distinct path;
# * a *row* is a tuple of small ints — per-link interned path ids, exactly
#   the :class:`~repro.storage.columnar.TermTable` idea applied to the
#   process boundary.  Each direction of each parent↔worker link has a
#   :class:`WireEncoder` at the sender and a :class:`WireDecoder` at the
#   receiver; ids are assigned densely at first sight and the definitions
#   of the ids a batch introduces travel FIFO *with that batch* (the
#   ``defs`` prefix), so id == list index on both sides with no handshake.
#
# Rows repeat heavily across rounds (a derived fact is synced to replicas
# and re-shipped as the next round's frontier; unary atoms recur in
# thousands of rows), so after the first sight every occurrence costs one
# int instead of a nested tuple — the payload reduction is measured and
# reported by ``benchmarks/bench_sharding.py``.


def _encode_path(path: Path) -> tuple:
    return tuple(
        element if isinstance(element, str) else (_encode_path(element.contents),)
        for element in path.elements
    )


def _decode_path(encoded: tuple) -> Path:
    return Path(
        tuple(
            item if isinstance(item, str) else Packed(_decode_path(item[0]))
            for item in encoded
        )
    )


class WireEncoder:
    """The sending half of one link direction: paths become dense int ids.

    ``encode_row`` interns by :class:`~repro.model.terms.Path` (the hot
    lookup — it replaces the per-round row-encoding cache the executor used
    to keep); ``def_id`` interns by an already-encoded definition, which is
    what lets the parent *router* re-encode a foreign row for its home
    worker's link without ever building a Path.  ``take_defs`` drains the
    definitions not yet shipped — call it once per dispatched batch, after
    everything in the batch has been encoded.
    """

    __slots__ = ("_by_path", "_by_def", "_defs", "_shipped")

    def __init__(self):
        self._by_path: "dict[Path, int]" = {}
        self._by_def: "dict[tuple, int]" = {}
        self._defs: "list[tuple]" = []  # id -> definition (densely indexed)
        self._shipped = 0  # ids below this are known to the receiver

    def path_id(self, path: Path) -> int:
        ident = self._by_path.get(path)
        if ident is None:
            definition = _encode_path(path)
            ident = self._by_def.get(definition)
            if ident is None:
                ident = len(self._defs)
                self._by_def[definition] = ident
                self._defs.append(definition)
            self._by_path[path] = ident
        return ident

    def def_id(self, definition: tuple) -> int:
        ident = self._by_def.get(definition)
        if ident is None:
            ident = self._by_def[definition] = len(self._defs)
            self._defs.append(definition)
        return ident

    def encode_row(self, row: "tuple[Path, ...]") -> "tuple[int, ...]":
        return tuple(self.path_id(path) for path in row)

    def take_defs(self) -> "list[tuple]":
        """The definitions introduced since the last batch (FIFO, id order)."""
        start = self._shipped
        self._shipped = len(self._defs)
        return self._defs[start:]

    def def_row(self, id_row: "tuple[int, ...]") -> tuple:
        """The self-describing (nested-tuple) form of *id_row* — measurement only."""
        defs = self._defs
        return tuple(defs[ident] for ident in id_row)

    def clone(self) -> "WireEncoder":
        """A copy sharing no state — for links seeded with one shared snapshot."""
        other = WireEncoder()
        other._by_path = dict(self._by_path)
        other._by_def = dict(self._by_def)
        other._defs = list(self._defs)
        other._shipped = self._shipped
        return other


class WireDecoder:
    """The receiving half: absorb each batch's defs, look rows up by id.

    Paths are built lazily and memoised per id — the router-mode parent
    never asks for them at all (it forwards definitions verbatim), and in
    replicated rounds each distinct path is decoded once however many rows
    it appears in.
    """

    __slots__ = ("_defs", "_paths")

    def __init__(self):
        self._defs: "list[tuple]" = []
        self._paths: "list[Path | None]" = []

    def absorb(self, defs: "list[tuple]") -> None:
        self._defs.extend(defs)
        self._paths.extend([None] * len(defs))

    def path(self, ident: int) -> Path:
        decoded = self._paths[ident]
        if decoded is None:
            decoded = self._paths[ident] = _decode_path(self._defs[ident])
        return decoded

    def decode_row(self, id_row: "tuple[int, ...]") -> "tuple[Path, ...]":
        return tuple(self.path(ident) for ident in id_row)

    def definition(self, ident: int) -> tuple:
        return self._defs[ident]

    def def_row(self, id_row: "tuple[int, ...]") -> tuple:
        defs = self._defs
        return tuple(defs[ident] for ident in id_row)


# -- packed id blocks ------------------------------------------------------------------
#
# Interned rows still cost a tuple object (and its pickle frame) per row.
# The exchange payloads therefore ship *blocks*: all rows of one relation
# (and arity) flattened into a single id array (``array('q')`` in the
# general case; links whose id space still fits ship narrower typecodes),
# with an explicit row count so arity-0 rows survive.  A block is
# ``(name, arity, count, ids)`` — ship blocks prefix the home shard,
# catch-up segments prefix the op flags — and pickles as one buffer
# instead of thousands of small tuples.


def _pack_ids(ids: "list[int]") -> "array":
    """The flat ids as the narrowest array type they fit (ids are dense,
    assigned per link at first sight, so most links never outgrow 16 bits)."""
    top = max(ids, default=0)
    if top < 1 << 16:
        typecode = "H"
    elif top < 1 << 32:
        typecode = "I"
    else:
        typecode = "q"
    return array(typecode, ids)


class _BlockPacker:
    """Accumulate id rows into per-``(tag, arity)`` flat id-array blocks."""

    __slots__ = ("_blocks",)

    def __init__(self):
        self._blocks: "dict[tuple, list]" = {}

    def add(self, tag, id_row: "tuple[int, ...]") -> None:
        key = (tag, len(id_row))
        entry = self._blocks.get(key)
        if entry is None:
            entry = self._blocks[key] = [0, []]
        entry[0] += 1
        entry[1].extend(id_row)

    def blocks(self) -> "list[tuple]":
        out = []
        for (tag, arity), (count, ids) in self._blocks.items():
            packed = _pack_ids(ids)
            if isinstance(tag, tuple):
                out.append((*tag, arity, count, packed))
            else:
                out.append((tag, arity, count, packed))
        return out


def _iter_id_rows(arity: int, count: int, ids: "array"):
    """The id rows of one block, as plain int tuples."""
    if arity == 0:
        for _ in range(count):
            yield ()
        return
    for start in range(0, arity * count, arity):
        yield tuple(ids[start : start + arity])


def _decode_block_rows(decoder: WireDecoder, arity: int, count: int, ids: "array"):
    """The path rows of one block, decoded through *decoder*."""
    decode = decoder.decode_row
    for id_row in _iter_id_rows(arity, count, ids):
        yield decode(id_row)


def _decode_fact_blocks(decoder: WireDecoder, blocks: "list[tuple]") -> "set[Fact]":
    facts: "set[Fact]" = set()
    for name, arity, count, ids in blocks:
        facts.update(
            Fact(name, row) for row in _decode_block_rows(decoder, arity, count, ids)
        )
    return facts


def _encode_fact_blocks(encoder: WireEncoder, facts: "Iterable[Fact]") -> "list[tuple]":
    packer = _BlockPacker()
    for fact in facts:
        packer.add(fact.relation, encoder.encode_row(fact.paths))
    return packer.blocks()


def _encode_counted_blocks(
    encoder: WireEncoder, counts: "dict[Fact, int]"
) -> "tuple[list[tuple], list[tuple[int, ...]]]":
    """Encode fact→signed-count pairs as standard fact blocks plus a parallel
    per-block tuple of counts (blocks keep ``ids`` last, so the byte-level
    accounting helpers keep working)."""
    packer = _BlockPacker()
    signs: "dict[tuple, list[int]]" = {}
    for fact, value in counts.items():
        row = encoder.encode_row(fact.paths)
        packer.add(fact.relation, row)
        signs.setdefault((fact.relation, len(row)), []).append(value)
    blocks = packer.blocks()
    return blocks, [tuple(signs[(name, arity)]) for name, arity, _count, _ids in blocks]


def _decode_counted_blocks(
    decoder: WireDecoder, blocks: "list[tuple]", block_signs: "list[tuple[int, ...]]"
) -> "dict[Fact, int]":
    counts: "dict[Fact, int]" = {}
    for (name, arity, count, ids), signs in zip(blocks, block_signs):
        for row, value in zip(_decode_block_rows(decoder, arity, count, ids), signs):
            counts[Fact(name, row)] = value
    return counts


def _encode_row_blocks(encoder: WireEncoder, name: str, rows: "Iterable") -> "list[tuple]":
    packer = _BlockPacker()
    for row in rows:
        packer.add(name, encoder.encode_row(row))
    return packer.blocks()


def _pack_catchup(ops: "list[tuple[bool, str, tuple, bool]]") -> "list[tuple]":
    """Merge ordered per-row catch-up ops into packed segments.

    A segment is ``(added, name, countable, arity, count, ids)``; runs of
    ops with identical flags merge, and segment order preserves op order —
    an add after a remove of the same row must land after it.
    """
    segments: "list[list]" = []
    last_key = None
    for added, name, row, countable in ops:
        key = (added, name, countable, len(row))
        if key == last_key:
            segment = segments[-1]
            segment[4] += 1
            segment[5].extend(row)
        else:
            last_key = key
            segments.append([added, name, countable, len(row), 1, list(row)])
    return [(*segment[:5], _pack_ids(segment[5])) for segment in segments]


def _nested_blocks(codec, blocks: "list[tuple]") -> "list[tuple]":
    """The per-row nested-tuple form of *blocks* — payload measurement only."""
    nested = []
    for block in blocks:
        *head, arity, count, ids = block
        rows = [codec.def_row(id_row) for id_row in _iter_id_rows(arity, count, ids)]
        nested.append((*head, rows))
    return nested


# Worker-process state for :class:`ProcessExecutor`: each single-worker pool
# initializes exactly one of these in its (dedicated) child process.
_WORKER: dict = {}


def _worker_init(
    program: Program,
    limits: EvaluationLimits,
    execution: ExecutionMode,
    snapshot: "tuple[list[tuple], list[str], list[tuple]]",
    spec: "ShardingSpec | None" = None,
    shard: int = 0,
    partitioned: bool = False,
) -> None:
    # The snapshot is already in wire form — its defs seed the inbound
    # decoder, so every path the parent ships later that the snapshot
    # already named costs one int from the very first round.  It arrives
    # as packed id blocks plus the full relation-name list (a relation
    # with no rows must still exist worker-side).
    defs, names, blocks = snapshot
    inbound = WireDecoder()
    inbound.absorb(defs)
    instance = Instance()
    for name in names:
        instance.ensure_relation(name)
    for name, arity, count, ids in blocks:
        instance.ensure_relation(name)
        storage = instance.storage(name)
        for row in _decode_block_rows(inbound, arity, count, ids):
            storage.add(row)
    _WORKER["program"] = program
    _WORKER["instance"] = instance
    _WORKER["evaluators"] = ProgramEvaluators(limits, execution=execution)
    _WORKER["spec"] = spec
    _WORKER["shard"] = shard
    _WORKER["partitioned"] = partitioned
    #: Per-link codec state: the parent→worker decoder and the
    #: worker→parent encoder (each direction owns its id space).
    _WORKER["inbound"] = inbound
    _WORKER["outbound"] = WireEncoder()
    #: Foreign-homed facts already shipped to the parent (partitioned mode):
    #: a partitioned worker does not retain them, so without this set every
    #: re-derivation would cross the wire and be re-deduplicated there.
    _WORKER["exported"] = set()
    #: Resident goal-program evaluators (worker-resident serving): keyed by
    #: the magic program object, so repeated queries against the same goal
    #: shape reuse their compiled plans without parent round-trips.
    _WORKER["goal_cache"] = {}


#: Counter fields a worker reports back after a round — the same per-shard
#: work counters :meth:`EvaluationStatistics.absorb_counters` folds together
#: (one shared tuple, so a new counter cannot silently stop travelling).
_ROUND_COUNTERS = EvaluationStatistics.WORK_COUNTERS


def _merge_counters(statistics: EvaluationStatistics, counters: "dict[str, int]") -> None:
    """Fold a worker's reported counter dict into *statistics*."""
    for name, value in counters.items():
        setattr(statistics, name, getattr(statistics, name) + value)


def _apply_catchup(
    segments: "list[tuple]", *, count_new: bool = False
) -> "tuple[list[Fact], int]":
    """Apply packed catch-up segments to the worker's instance.

    Returns ``(new_facts, counted)``: the facts actually new to this worker
    (only collected under *count_new* — router mode feeds them into its
    frontier) and how many of them were marked countable by the parent.
    """
    instance: Instance = _WORKER["instance"]
    exported: set = _WORKER["exported"]
    inbound: WireDecoder = _WORKER["inbound"]
    catch_new: "list[Fact]" = []
    counted = 0
    for added, name, countable, arity, count, ids in segments:
        if added:
            instance.ensure_relation(name)
            storage = instance.storage(name)
            for row in _decode_block_rows(inbound, arity, count, ids):
                if storage.add(row) and count_new:
                    catch_new.append(Fact(name, row))
                    if countable:
                        counted += 1
        else:
            storage = instance.storage(name)
            for row in _decode_block_rows(inbound, arity, count, ids):
                if storage is not None:
                    storage.discard(row)
                if exported:
                    # A removed fact must become exportable again: if this
                    # worker re-derives it later, the parent needs to hear.
                    exported.discard(Fact(name, row))
    return catch_new, counted


def _decode_frontier(frontier: "list[tuple]") -> "tuple[Instance, set[str]]":
    """A frontier's packed blocks as a delta instance plus its relation names."""
    inbound: WireDecoder = _WORKER["inbound"]
    delta = Instance()
    names: "set[str]" = set()
    for name, arity, count, ids in frontier:
        delta.ensure_relation(name)
        storage = delta.storage(name)
        for row in _decode_block_rows(inbound, arity, count, ids):
            storage.add(row)
        names.add(name)
    return delta, names


def _worker_round(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    stratum_index: int,
    frontier: "list[tuple]",
    local: bool,
) -> "tuple[list[tuple], list[tuple], dict[str, int]]":
    """One delta-restricted round in a worker: catch up, derive, self-apply."""
    instance: Instance = _WORKER["instance"]
    exported: set = _WORKER["exported"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    _apply_catchup(catchup)
    stratum = _WORKER["program"].strata[stratum_index]
    evaluators = _WORKER["evaluators"].for_stratum(stratum)
    statistics = EvaluationStatistics()
    delta, changed = _decode_frontier(frontier)
    new_facts = _apply_rules_seminaive(evaluators, instance, delta, changed, statistics)
    # Apply own derivations immediately: the parent will only send back what
    # the *other* shards derived (the cross-shard rows).  A partitioned
    # worker keeps its own partition only — foreign-homed derivations travel
    # to their home shard, and the ``exported`` set stops re-derivations of
    # the same foreign fact from crossing the wire again.  In *local* mode
    # foreign derivations are dropped outright: the frontier was broadcast
    # where it had to be, so the home worker derives its own copy.
    if _WORKER["partitioned"]:
        spec: ShardingSpec = _WORKER["spec"]
        home = _WORKER["shard"]
        shipped = []
        for fact in new_facts:
            if spec.shard_of_fact(fact) == home:
                instance.add_fact(fact)
                shipped.append(fact)
            elif not local and fact not in exported:
                exported.add(fact)
                shipped.append(fact)
        new_facts = shipped
    else:
        for fact in new_facts:
            instance.add_fact(fact)
    outbound: WireEncoder = _WORKER["outbound"]
    blocks = _encode_fact_blocks(outbound, new_facts)
    return (
        outbound.take_defs(),
        blocks,
        {name: getattr(statistics, name) for name in _ROUND_COUNTERS},
    )


def _worker_run_stratum(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    stratum_index: int,
    frontier: "list[tuple]",
) -> "tuple[list[tuple], list[tuple], dict[str, int], int]":
    """A whole worker-resident delta cascade: micro-rounds without barriers.

    Only dispatched for ``local``-mode strata: every rule there reads rows
    co-located with its head (or replicated), so the worker can chase its
    frontier to a local fixpoint, keep its home derivations, and drop
    foreign ones — the home worker derives its own copy from the same
    broadcast delta.  Returns the net-new home facts, the work counters,
    and the number of micro-rounds run.
    """
    instance: Instance = _WORKER["instance"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    _apply_catchup(catchup)
    stratum = _WORKER["program"].strata[stratum_index]
    evaluators = _WORKER["evaluators"].for_stratum(stratum)
    limits: EvaluationLimits = _WORKER["evaluators"].limits
    spec: ShardingSpec = _WORKER["spec"]
    home = _WORKER["shard"]
    statistics = EvaluationStatistics()
    delta, _ = _decode_frontier(frontier)
    frontier_facts = {
        Fact(name, row)
        for name in delta.relation_names
        for row in delta.relation(name)
    }
    net: "set[Fact]" = set()
    scratch = Instance()
    rounds = 0
    while frontier_facts:
        rounds += 1
        limits.check_iterations(rounds)
        scratch.replace_with(frontier_facts)
        changed = {fact.relation for fact in frontier_facts}
        derived = _apply_rules_seminaive(evaluators, instance, scratch, changed, statistics)
        frontier_facts = set()
        for fact in derived:
            if spec.shard_of_fact(fact) == home:
                instance.add_fact(fact)
                net.add(fact)
                frontier_facts.add(fact)
        limits.check_fact_count(instance.fact_count())
    outbound: WireEncoder = _WORKER["outbound"]
    blocks = _encode_fact_blocks(outbound, net)
    return (
        outbound.take_defs(),
        blocks,
        {name: getattr(statistics, name) for name in _ROUND_COUNTERS},
        rounds,
    )


# -- router-mode worker ops (partitioned builds) ---------------------------------------
#
# During a full build of a key-aligned program the parent does not need the
# derived facts round by round — only the fixpoint at the end.  In router
# mode each worker seeds its own frontier from its partition, keeps its own
# home derivations as the next round's frontier, and ships foreign-homed
# rows to the parent, which forwards them (still encoded, never decoded) to
# their home worker's queue.  The parent's per-round cost collapses to
# routing; the partitions are fetched once at the end of the stratum.


def _worker_router_start(names: "list[str]") -> int:
    """Seed the round-zero frontier: this worker's partition of *names*.

    Replicated relations are present in full on every worker, but their
    rows seed the frontier at their *owning* shard only — otherwise every
    worker would redo the same round-one pivots N times (the copies exist
    for join completeness, not as work).
    """
    instance: Instance = _WORKER["instance"]
    spec: "ShardingSpec | None" = _WORKER["spec"]
    shard = _WORKER["shard"]
    replicated = spec.replicated if spec is not None else frozenset()
    frontier: set[Fact] = set()
    for name in names:
        if name in replicated:
            for row in instance.relation(name):
                if spec.shard_of_row(name, row) == shard:
                    frontier.add(Fact(name, row))
        else:
            for row in instance.relation(name):
                frontier.add(Fact(name, row))
    _WORKER["frontier"] = frontier
    return len(frontier)


def _worker_router_round(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    stratum_index: int,
) -> "tuple[list[tuple], list[tuple], int, int, dict[str, int]]":
    """One router-mode round: returns (defs, ships, counted_new, frontier_left, counters)."""
    instance: Instance = _WORKER["instance"]
    spec: ShardingSpec = _WORKER["spec"]
    home = _WORKER["shard"]
    exported: set = _WORKER["exported"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    # Router-forwarded rows are counted where they land (the deriving
    # worker did not keep them); parent-queued rows were already counted
    # when the parent applied them.
    catch_new, counted_catch = _apply_catchup(catchup, count_new=True)
    frontier: set[Fact] = _WORKER.get("frontier") or set()
    frontier |= set(catch_new)
    if not frontier:
        _WORKER["frontier"] = set()
        return [], [], counted_catch, 0, {}
    stratum = _WORKER["program"].strata[stratum_index]
    evaluators = _WORKER["evaluators"].for_stratum(stratum)
    statistics = EvaluationStatistics()
    delta = Instance()
    delta.replace_with(frontier)
    new_facts = _apply_rules_seminaive(
        evaluators, instance, delta, {fact.relation for fact in frontier}, statistics
    )
    home_new: "set[Fact]" = set()
    outbound: WireEncoder = _WORKER["outbound"]
    ships = _BlockPacker()
    for fact in new_facts:
        fact_home = spec.shard_of_fact(fact)
        if fact_home == home:
            instance.add_fact(fact)
            home_new.add(fact)
        elif fact not in exported:
            exported.add(fact)
            ships.add((fact_home, fact.relation), outbound.encode_row(fact.paths))
    _WORKER["frontier"] = home_new
    return (
        outbound.take_defs(),
        ships.blocks(),
        len(home_new) + counted_catch,
        len(home_new),
        {name: getattr(statistics, name) for name in _ROUND_COUNTERS},
    )


def _worker_router_dump(
    names: "list[str]",
) -> "tuple[list[tuple], list[tuple]]":
    """This worker's partition of *names*, for the end-of-stratum collect."""
    instance: Instance = _WORKER["instance"]
    outbound: WireEncoder = _WORKER["outbound"]
    packer = _BlockPacker()
    for name in names:
        for row in instance.relation(name):
            packer.add(name, outbound.encode_row(row))
    return outbound.take_defs(), packer.blocks()


def _worker_dred(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    stratum_index: int,
    added_blocks: "list[tuple]",
    removed_blocks: "list[tuple]",
    seed_blocks: "list[tuple]",
    pinned_blocks: "list[tuple]",
) -> "tuple[list[tuple], list[tuple], list[tuple], dict[str, int], int]":
    """Worker-local DRed: overdelete from the removed seeds, then rederive.

    Sound only for ``local``-mode strata: the overdeletion cascade of a
    home fact pivots home and replicated rows exclusively (replicated
    relations are never derived, so the cascade cannot pass through them),
    and every rederivation support set for a home fact is likewise
    worker-visible.  The pre-update overlay of each changed relation is
    rebuilt here as ``(current − added) ∪ removed`` over the worker's view.
    Returns the overdeleted and rederived facts (already applied locally)
    plus the overdeletion round count.
    """
    instance: Instance = _WORKER["instance"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    _apply_catchup(catchup)
    stratum = _WORKER["program"].strata[stratum_index]
    evaluators = _WORKER["evaluators"].for_stratum(stratum)
    limits: EvaluationLimits = _WORKER["evaluators"].limits
    statistics = EvaluationStatistics()

    added_rows: "dict[str, set]" = {}
    for name, arity, count, ids in added_blocks:
        added_rows.setdefault(name, set()).update(
            _decode_block_rows(inbound, arity, count, ids)
        )
    removed_rows: "dict[str, set]" = {}
    for name, arity, count, ids in removed_blocks:
        removed_rows.setdefault(name, set()).update(
            _decode_block_rows(inbound, arity, count, ids)
        )
    changed_names = set(added_rows) | set(removed_rows)
    old_overlay = Instance()
    for name in changed_names:
        rows = (
            set(instance.relation(name)) if name in instance.relation_names else set()
        )
        rows -= added_rows.get(name, set())
        rows |= removed_rows.get(name, set())
        old_overlay.set_relation_rows(name, rows)

    head_names = stratum.head_relation_names()
    pinned = _decode_fact_blocks(inbound, pinned_blocks)
    frontier_facts = _decode_fact_blocks(inbound, seed_blocks)
    overdeleted: "set[Fact]" = set()
    frontier_instance = Instance()
    rounds = 0
    while frontier_facts:
        rounds += 1
        limits.check_iterations(rounds)
        frontier_instance.replace_with(frontier_facts)
        frontier_names = {fact.relation for fact in frontier_facts}
        new_deleted: "set[Fact]" = set()
        for evaluator in evaluators:
            if not (evaluator.body_relation_names & frontier_names):
                continue
            statistics.rule_applications += 1
            positions = evaluator.positions_in_order
            for pivot, name in positions:
                if name not in frontier_names:
                    continue
                overrides = {
                    position: old_overlay
                    for position, other in positions
                    if position != pivot and other in changed_names
                }
                statistics.delta_restricted_applications += 1
                frontier = {pivot: frontier_instance, **overrides}
                for fact in evaluator.derive(
                    instance, frontier=frontier, statistics=statistics
                ):
                    if (
                        fact.relation in head_names
                        and fact not in overdeleted
                        and fact not in pinned
                        and fact in instance
                    ):
                        new_deleted.add(fact)
        overdeleted |= new_deleted
        frontier_facts = new_deleted
    for fact in overdeleted:
        instance.discard_fact(fact, keep_empty=True)

    from repro.engine.match import match_fact

    by_head: "dict[str, list]" = {}
    for evaluator in evaluators:
        by_head.setdefault(evaluator.rule.head.name, []).append(evaluator)
    rederived: "set[Fact]" = set()
    for fact in overdeleted:
        for evaluator in by_head.get(fact.relation, ()):
            statistics.rederivation_attempts += 1
            initial = list(match_fact(evaluator.rule.head, fact))
            if not initial:
                continue
            derivation = next(
                iter(
                    evaluator.derivations(
                        instance, initial_valuations=initial, statistics=statistics
                    )
                ),
                None,
            )
            if derivation is not None:
                instance.add_fact(fact)
                rederived.add(fact)
                break

    outbound: WireEncoder = _WORKER["outbound"]
    over_blocks = _encode_fact_blocks(outbound, overdeleted)
    reder_blocks = _encode_fact_blocks(outbound, rederived)
    return (
        outbound.take_defs(),
        over_blocks,
        reder_blocks,
        {name: getattr(statistics, name) for name in _ROUND_COUNTERS},
        rounds,
    )


def _worker_counting(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    stratum_index: int,
    added_blocks: "list[tuple]",
    removed_blocks: "list[tuple]",
    pivot_added_blocks: "list[tuple]",
    pivot_removed_blocks: "list[tuple]",
) -> "tuple[list[tuple], list[tuple], list[tuple], dict[str, int]]":
    """Worker-local signed counting: the telescoped delta joins of one
    non-recursive stratum, enumerated against the resident partition.

    Sound for ``local``- and ``aligned``-mode strata none of whose changed
    relations are replicated: both proofs key every non-replicated read
    (positive or negated) of a multi-predicate rule by the rule's anchor
    variable, so a valuation pivoting on a row homed here reads home or
    replicated rows exclusively — each derivation is enumerated at exactly
    the one shard its pivot row homes to, and the per-shard signed counts
    merge exactly.  (Aligned mode's foreign-homed *heads* don't matter:
    the counts travel back to the parent, which owns the net add/remove
    decisions.)  The pre-update overlay of each changed relation is
    rebuilt as ``(current − added) ∪ removed`` over the worker's view —
    sound for the same reason: the old rows a home valuation can touch
    are home rows.  Returns the signed count deltas for this shard's
    slice of the derivations.
    """
    from repro.engine.evaluation import satisfying_valuations

    instance: Instance = _WORKER["instance"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    _apply_catchup(catchup)
    stratum = _WORKER["program"].strata[stratum_index]
    evaluators = _WORKER["evaluators"].for_stratum(stratum)
    limits: EvaluationLimits = _WORKER["evaluators"].limits
    statistics = EvaluationStatistics()

    added_rows: "dict[str, set]" = {}
    for name, arity, count, ids in added_blocks:
        added_rows.setdefault(name, set()).update(
            _decode_block_rows(inbound, arity, count, ids)
        )
    removed_rows: "dict[str, set]" = {}
    for name, arity, count, ids in removed_blocks:
        removed_rows.setdefault(name, set()).update(
            _decode_block_rows(inbound, arity, count, ids)
        )
    changed_names = set(added_rows) | set(removed_rows)
    old_overlay = Instance()
    for name in changed_names:
        rows = (
            set(instance.relation(name)) if name in instance.relation_names else set()
        )
        rows -= added_rows.get(name, set())
        rows |= removed_rows.get(name, set())
        old_overlay.set_relation_rows(name, rows)

    # This shard's home slice of the delta, one single-relation frontier
    # instance per (polarity, relation) — the pivot is the only position
    # that ever reads it.
    pivots: "dict[tuple[str, str], Instance]" = {}
    for polarity, blocks in (
        ("added", pivot_added_blocks),
        ("removed", pivot_removed_blocks),
    ):
        for name, arity, count, ids in blocks:
            part = pivots.get((polarity, name))
            if part is None:
                part = pivots[(polarity, name)] = Instance()
                part.ensure_relation(name)
            storage = part.storage(name)
            for row in _decode_block_rows(inbound, arity, count, ids):
                storage.add(row)

    delta_counts: "dict[Fact, int]" = {}
    for evaluator in evaluators:
        read_names = evaluator.body_relation_names | evaluator.negated_relation_names
        if not (read_names & changed_names):
            continue
        statistics.rule_applications += 1
        positions = evaluator.positions_in_order
        negated_positions = tuple(
            (position, literal)
            for position, literal in enumerate(evaluator.order)
            if literal.negative and literal.is_predicate()
        )
        negative_old = {
            position: old_overlay
            for position, literal in negated_positions
            if literal.atom.name in changed_names
        }
        for pivot_index, (pivot, name) in enumerate(positions):
            if name not in changed_names:
                continue
            overrides = {
                position: old_overlay
                for position, later_name in positions[pivot_index + 1 :]
                if later_name in changed_names
            }
            for polarity, sign in (("added", 1), ("removed", -1)):
                part = pivots.get((polarity, name))
                if part is None:
                    continue
                statistics.delta_restricted_applications += 1
                frontier = {pivot: part, **overrides}
                seen: set = set()
                for fact, valuation in evaluator.derivations(
                    instance,
                    frontier=frontier,
                    statistics=statistics,
                    negative_sources=negative_old or None,
                ):
                    if valuation in seen:
                        continue
                    seen.add(valuation)
                    delta_counts[fact] = delta_counts.get(fact, 0) + sign
        for pivot, literal in negated_positions:
            name = literal.atom.name
            if name not in changed_names:
                continue
            flipped = list(evaluator.order)
            flipped[pivot] = literal.negated()
            later_old = {
                position: old_overlay
                for position, other in negated_positions
                if position > pivot and other.atom.name in changed_names
            }
            for polarity, sign in (("added", -1), ("removed", 1)):
                part = pivots.get((polarity, name))
                if part is None:
                    continue
                statistics.delta_restricted_applications += 1
                seen = set()
                for valuation in satisfying_valuations(
                    evaluator.rule,
                    instance,
                    limits,
                    order=flipped,
                    frontier={pivot: part},
                    execution=evaluator.execution,
                    statistics=statistics,
                    negative_sources=later_old or None,
                ):
                    if valuation in seen:
                        continue
                    seen.add(valuation)
                    fact = valuation.apply_to_predicate(evaluator.rule.head)
                    for fact_path in fact.paths:
                        limits.check_path_length(len(fact_path))
                    delta_counts[fact] = delta_counts.get(fact, 0) + sign

    outbound: WireEncoder = _WORKER["outbound"]
    counted_blocks, block_signs = _encode_counted_blocks(outbound, delta_counts)
    return (
        outbound.take_defs(),
        counted_blocks,
        block_signs,
        {name: getattr(statistics, name) for name in _ROUND_COUNTERS},
    )


def _worker_repartition(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    keys: "dict[str, int]",
    blocks: "list[tuple]",
) -> int:
    """Adopt new shard keys and wholesale-replace the rekeyed partitions.

    The parent drained this link's catch-up queue into *catchup* first, so
    the replacement lands on an up-to-date view; *blocks* carry this
    worker's entire new partition of every rekeyed relation.  Exported-fact
    memory for those relations is dropped — ownership just changed under
    it, and the parent's router dedup set is reset per stratum anyway.
    """
    instance: Instance = _WORKER["instance"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    _apply_catchup(catchup)
    spec: ShardingSpec = _WORKER["spec"]
    spec.keys.update(keys)
    rows_by_name: "dict[str, set]" = {name: set() for name in keys}
    for name, arity, count, ids in blocks:
        rows_by_name[name].update(_decode_block_rows(inbound, arity, count, ids))
    for name, rows in rows_by_name.items():
        instance.set_relation_rows(name, rows)
    exported: set = _WORKER["exported"]
    if exported:
        _WORKER["exported"] = {
            fact for fact in exported if fact.relation not in keys
        }
    return sum(len(rows) for rows in rows_by_name.values())


def _worker_run_goal(
    defs: "list[tuple]",
    catchup: "list[tuple]",
    program: Program,
    seed_blocks: "list[tuple]",
) -> "tuple[list[tuple], list[tuple], dict[str, int]]":
    """Evaluate a goal's magic program against this worker's resident state.

    Only dispatched when the goal's shard footprint is exactly this shard:
    every row any rule of *program* can touch is then provably homed here
    (or replicated here in full).  The evaluators compiled for *program*
    stay cached in the worker across queries, so repeated goals of the
    same shape reuse their join plans without any parent round-trip.
    """
    instance: Instance = _WORKER["instance"]
    inbound: WireDecoder = _WORKER["inbound"]
    inbound.absorb(defs)
    _apply_catchup(catchup)
    base: ProgramEvaluators = _WORKER["evaluators"]
    cache: dict = _WORKER["goal_cache"]
    evaluators = cache.get(program)
    if evaluators is None:
        evaluators = cache[program] = ProgramEvaluators(
            base.limits, execution=base.execution
        )
    seed_facts = _decode_fact_blocks(inbound, seed_blocks)
    # The magic program reads the served relations as its EDB; restricting
    # the input to exactly those names keeps the goal's adorned/magic
    # relations from colliding with anything resident.
    source = Instance()
    for name in program.edb_relation_names():
        if name in instance.relation_names:
            source.set_relation_rows(name, set(instance.relation(name)))
    statistics = EvaluationStatistics()
    result = evaluate_program(
        program,
        source,
        base.limits,
        execution=base.execution,
        statistics=statistics,
        seed_facts=seed_facts,
        evaluators=evaluators,
    )
    outbound: WireEncoder = _WORKER["outbound"]
    packer = _BlockPacker()
    for name in result.relation_names:
        for row in result.relation(name):
            packer.add(name, outbound.encode_row(row))
    return (
        outbound.take_defs(),
        packer.blocks(),
        {name: getattr(statistics, name) for name in _ROUND_COUNTERS},
    )


class ProcessExecutor(ParallelExecutor):
    """One single-worker process pool per shard, with persistent replicas.

    Shard *i*'s tasks always land on process *i* (a shared pool would not
    guarantee that), so each process can keep its replica of the instance
    across rounds: :meth:`attach` ships a pickled snapshot once, and every
    later round carries only the shard's frontier plus the queued cross-shard
    rows it has not seen yet.  Rounds whose total frontier is smaller than
    :attr:`min_round_rows` return ``None`` — the parent runs them in-process
    (still shard-partitioned), because pickling would dwarf the work; the
    queued catch-up is simply delivered with the next dispatched round.

    All row traffic runs through the per-link interned codec
    (:class:`WireEncoder`/:class:`WireDecoder`): each direction of each
    link ships a path's definition once and ints thereafter.  With
    ``measure_payloads=True`` every shipped batch is additionally pickled
    in both forms and the byte totals accumulate in
    :attr:`payload_bytes_interned` / :attr:`payload_bytes_nested` — the
    numbers ``benchmarks/bench_sharding.py`` reports.  (Measurement
    doubles the parent-side pickling work, so it is off by default.)
    """

    kind = "process"

    def __init__(
        self,
        shard_count: int,
        *,
        min_round_rows: int = 64,
        max_backlog_rows: int = 8192,
        measure_payloads: bool = False,
    ):
        super().__init__(shard_count)
        #: Rounds whose total frontier is below this run on the parent
        #: in-process (pickling would dwarf the work); tunable so the
        #: benchmarks can force every round through the workers.
        self.min_round_rows = min_round_rows
        #: ... unless a worker's catch-up queue has grown past this many
        #: rows, in which case the round dispatches anyway to drain it.
        self.max_backlog_rows = max_backlog_rows
        #: How many rounds the fallback heuristic kept on the parent — the
        #: observability knob for tuning the two thresholds above.
        self.parent_fallback_rounds = 0
        self.measure_payloads = measure_payloads
        #: Accumulated pickled bytes of every shipped batch, in the interned
        #: wire form actually sent and in the self-describing nested form the
        #: codec replaced (both only tracked under ``measure_payloads``).
        self.payload_bytes_interned = 0
        self.payload_bytes_nested = 0
        self._pools: "list | None" = None
        self._spec: "ShardingSpec | None" = None
        self._partitioned = False
        self._modes: "tuple[str, ...]" = ()
        #: Deterministic exchange stats (always on): dispatched flushes and
        #: the packed id bytes (array itemsize × slots) shipped either way.
        self._batches = 0
        self._bytes = 0
        #: Per home shard, the outbound-encoded rows already forwarded this
        #: stratum (router mode): ids are canonical per link, so the same
        #: foreign fact derived by two workers deduplicates here.
        self._routed: "list[set[tuple[str, tuple]]]" = []
        #: Per-worker ordered catch-up ops ``(added?, name, row, countable?)``
        #: not yet shipped; ``countable`` marks router-forwarded rows the
        #: receiving home worker must count as newly derived (parent-queued
        #: rows were already counted when the parent applied them).  Ops are
        #: packed into merged segments at dispatch time.
        self._pending: "list[list[tuple[bool, str, tuple, bool]]]" = []
        #: Per-link codec state: parent→worker encoders (their ``_by_path``
        #: maps double as the re-ship cache) and worker→parent decoders.
        self._to_worker: "list[WireEncoder]" = []
        self._from_worker: "list[WireDecoder]" = []

    def _account(self, interned, nested) -> None:
        """Accumulate both wire forms' pickled sizes (measurement mode only).

        The nested baseline is pickled with memoization off (``Pickler.fast``)
        so every row pays its full self-describing cost, as the per-row tuple
        codec it models actually would — whole-batch memoization would let the
        baseline intern repeated paths for free and understate the comparison.
        """
        import io
        import pickle

        self.payload_bytes_interned += len(pickle.dumps(interned, pickle.HIGHEST_PROTOCOL))
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, pickle.HIGHEST_PROTOCOL)
        pickler.fast = True
        pickler.dump(nested)
        self.payload_bytes_nested += buffer.tell()

    def _count_dispatch(self, *block_lists) -> None:
        """Account one parent→worker flush: a batch plus its id payload."""
        self._batches += 1
        for blocks in block_lists:
            for block in blocks:
                ids = block[-1]
                self._bytes += ids.itemsize * len(ids)

    def _count_receipt(self, *block_lists) -> None:
        """Account a worker→parent payload (bytes only; not a dispatch)."""
        for blocks in block_lists:
            for block in blocks:
                ids = block[-1]
                self._bytes += ids.itemsize * len(ids)

    def _local_mode(self, stratum_index: int) -> bool:
        return (
            stratum_index < len(self._modes) and self._modes[stratum_index] == "local"
        )

    def _reads_are_colocated(self, stratum_index: int) -> bool:
        """Whether every valuation of the stratum reads one shard's rows.

        True for ``local`` *and* ``aligned`` strata — the alignment proof
        is exactly about the reads; the two modes differ only in where the
        derived head homes.  Enough for worker-resident counting, whose
        derivations travel back to the parent as signed counts anyway.
        """
        return stratum_index < len(self._modes) and self._modes[stratum_index] in (
            "local",
            "aligned",
        )

    def _drain_pending(self, shard: int, *, count: bool = True) -> "list[tuple]":
        """Take shard's queued catch-up as packed segments.

        *count* folds the drained rows into :meth:`take_exchanged`; router
        mode passes ``False`` because it reports its exchange through the
        shipped-row count instead (counting both would double-report).
        """
        ops = self._pending[shard]
        self._pending[shard] = []
        if count:
            self._exchanged += len(ops)
        return _pack_catchup(ops)

    def take_exchange_stats(self) -> "tuple[int, int]":
        stats = (self._batches, self._bytes)
        self._batches = 0
        self._bytes = 0
        return stats

    def attach(
        self,
        program: Program,
        limits: EvaluationLimits,
        execution: ExecutionMode,
        instance: Instance,
        *,
        spec: "ShardingSpec | None" = None,
        partitioned: bool = False,
        partitions: "list[Instance] | None" = None,
        modes: "tuple[str, ...]" = (),
    ) -> None:
        from concurrent.futures import ProcessPoolExecutor

        if partitioned and spec is None:
            raise EvaluationError("partitioned workers need the sharding spec")
        # Worker residency: re-attaching with the same shard count reuses
        # the live pools (a re-init task replaces each worker's state) —
        # respawning processes per evaluation would dwarf serving-sized
        # work.  The pools are created bare and initialized by an explicit
        # first task, so a respawned worker fails loudly instead of
        # resurrecting stale initializer state.
        reuse = self._pools is not None and len(self._pools) == self.shard_count
        if not reuse:
            self.close()
        self._spec = spec
        self._partitioned = partitioned
        self._modes = tuple(modes)
        replicated = spec.replicated if spec is not None else frozenset()
        names = sorted(instance.relation_names)
        per_worker: "list[tuple[list[tuple], list[str], list[tuple]]]"
        if partitioned and partitions is not None:
            # The owner already routed every row (its mirror): encode the
            # per-shard splits directly instead of hashing everything again.
            # Replicated relations are the exception — every worker gets the
            # authoritative full copy, not the mirror's ownership split.
            self._to_worker = [WireEncoder() for _ in range(self.shard_count)]
            per_worker = []
            for shard, shard_instance in enumerate(partitions):
                encoder = self._to_worker[shard]
                packer = _BlockPacker()
                for name in shard_instance.relation_names:
                    if name in replicated:
                        continue
                    for row in shard_instance.relation(name):
                        packer.add(name, encoder.encode_row(row))
                for name in replicated:
                    if name not in instance.relation_names:
                        continue
                    for row in instance.relation(name):
                        packer.add(name, encoder.encode_row(row))
                per_worker.append((encoder.take_defs(), names, packer.blocks()))
        elif partitioned:
            assert spec is not None
            self._to_worker = [WireEncoder() for _ in range(self.shard_count)]
            packers = [_BlockPacker() for _ in range(self.shard_count)]
            for name in instance.relation_names:
                if name in replicated:
                    for shard in range(self.shard_count):
                        encoder = self._to_worker[shard]
                        for row in instance.relation(name):
                            packers[shard].add(name, encoder.encode_row(row))
                    continue
                for shard, rows in enumerate(
                    spec.partition_rows(name, instance.relation(name))
                ):
                    encoder = self._to_worker[shard]
                    for row in rows:
                        packers[shard].add(name, encoder.encode_row(row))
            per_worker = [
                (self._to_worker[shard].take_defs(), names, packers[shard].blocks())
                for shard in range(self.shard_count)
            ]
        else:
            # Replicated: encode the snapshot once, seed every link's encoder
            # with the same interned state (the shared snapshot defines the
            # same ids on every link).
            prototype = WireEncoder()
            packer = _BlockPacker()
            for name in instance.relation_names:
                for row in instance.relation(name):
                    packer.add(name, prototype.encode_row(row))
            snapshot = (prototype.take_defs(), names, packer.blocks())
            self._to_worker = [prototype.clone() for _ in range(self.shard_count)]
            per_worker = [snapshot] * self.shard_count
        self._from_worker = [WireDecoder() for _ in range(self.shard_count)]
        for shard in range(self.shard_count):
            defs, _names, blocks = per_worker[shard]
            self._count_dispatch([*blocks])
            if self.measure_payloads:
                # The nested baseline is self-describing per-row tuples: no
                # definition prefix, every row pays its full nested form.
                encoder = self._to_worker[shard]
                self._account(
                    (defs, names, blocks), (names, _nested_blocks(encoder, blocks))
                )
        if not reuse:
            self._pools = [
                ProcessPoolExecutor(max_workers=1) for _ in range(self.shard_count)
            ]
        assert self._pools is not None
        futures = [
            pool.submit(
                _worker_init,
                program,
                limits,
                execution,
                per_worker[shard],
                spec,
                shard,
                partitioned,
            )
            for shard, pool in enumerate(self._pools)
        ]
        for future in futures:
            future.result()
        self._pending = [[] for _ in range(self.shard_count)]

    def sync(
        self,
        added: "Collection[Fact]",
        removed: "Collection[Fact]" = (),
        *,
        derived_by: "list[set[Fact]] | None" = None,
    ) -> None:
        if self._pools is None:
            return
        encoders = self._to_worker
        if self._partitioned:
            # Each *added* row travels to its home shard only — this is the
            # cross-shard exchange in its literal sense.  Removals broadcast:
            # besides the home partition they must clear every worker's
            # exported-fact memory, or a later re-derivation of the removed
            # fact would be silently suppressed.  Replicated-relation adds
            # broadcast too: every worker holds the full copy, and a
            # local-mode delta pivot is only complete if every worker sees
            # the new row.
            assert self._spec is not None
            replicated = self._spec.replicated
            for fact in removed:
                for shard, queue in enumerate(self._pending):
                    queue.append(
                        (False, fact.relation, encoders[shard].encode_row(fact.paths), False)
                    )
            for fact in added:
                if fact.relation in replicated:
                    for shard, queue in enumerate(self._pending):
                        queue.append(
                            (True, fact.relation, encoders[shard].encode_row(fact.paths), False)
                        )
                    continue
                home = self._spec.shard_of_fact(fact)
                if derived_by is not None and fact in derived_by[home]:
                    continue  # its home worker derived (and kept) it already
                self._pending[home].append(
                    (True, fact.relation, encoders[home].encode_row(fact.paths), False)
                )
            return
        for shard, queue in enumerate(self._pending):
            encoder = encoders[shard]
            skip = derived_by[shard] if derived_by is not None else ()
            for fact in removed:
                queue.append((False, fact.relation, encoder.encode_row(fact.paths), False))
            for fact in added:
                if fact not in skip:
                    queue.append((True, fact.relation, encoder.encode_row(fact.paths), False))

    def round(
        self,
        stratum_index: int,
        frontier_parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "list[set[Fact]] | None":
        if self._pools is None:
            raise EvaluationError("ProcessExecutor.round called before attach()")
        total = sum(len(part) for part in frontier_parts)
        backlog = max((len(queue) for queue in self._pending), default=0)
        if total < self.min_round_rows and backlog < self.max_backlog_rows:
            # Parent runs this round in-process; catch-up stays queued.
            self.parent_fallback_rounds += 1
            return None
        local = self._local_mode(stratum_index)
        futures = []
        for shard, pool in enumerate(self._pools):
            encoder = self._to_worker[shard]
            catchup = self._drain_pending(shard)
            frontier = _encode_fact_blocks(encoder, frontier_parts[shard])
            defs = encoder.take_defs()
            self._count_dispatch(catchup, frontier)
            if self.measure_payloads:
                self._account(
                    (defs, catchup, frontier),
                    (_nested_blocks(encoder, catchup), _nested_blocks(encoder, frontier)),
                )
            futures.append(
                pool.submit(_worker_round, defs, catchup, stratum_index, frontier, local)
            )
        results: "list[set[Fact]]" = []
        for shard, future in enumerate(futures):
            defs, blocks, counters = future.result()
            decoder = self._from_worker[shard]
            decoder.absorb(defs)
            _merge_counters(stats_parts[shard], counters)
            self._count_receipt(blocks)
            if self.measure_payloads:
                self._account((defs, blocks), _nested_blocks(decoder, blocks))
            results.append(_decode_fact_blocks(decoder, blocks))
        return results

    def run_stratum(
        self,
        stratum_index: int,
        frontier_parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "tuple[list[set[Fact]], int] | None":
        if (
            self._pools is None
            or not self._partitioned
            or not self._local_mode(stratum_index)
        ):
            return None
        total = sum(len(part) for part in frontier_parts)
        backlog = max((len(queue) for queue in self._pending), default=0)
        if total < self.min_round_rows and backlog < self.max_backlog_rows:
            self.parent_fallback_rounds += 1
            return None
        futures = {}
        for shard, pool in enumerate(self._pools):
            if not frontier_parts[shard] and not self._pending[shard]:
                continue
            encoder = self._to_worker[shard]
            catchup = self._drain_pending(shard)
            frontier = _encode_fact_blocks(encoder, frontier_parts[shard])
            defs = encoder.take_defs()
            self._count_dispatch(catchup, frontier)
            if self.measure_payloads:
                self._account(
                    (defs, catchup, frontier),
                    (_nested_blocks(encoder, catchup), _nested_blocks(encoder, frontier)),
                )
            futures[shard] = pool.submit(
                _worker_run_stratum, defs, catchup, stratum_index, frontier
            )
        results: "list[set[Fact]]" = [set() for _ in range(self.shard_count)]
        rounds = 0
        for shard, future in futures.items():
            defs, blocks, counters, worker_rounds = future.result()
            decoder = self._from_worker[shard]
            decoder.absorb(defs)
            _merge_counters(stats_parts[shard], counters)
            self._count_receipt(blocks)
            if self.measure_payloads:
                self._account((defs, blocks), _nested_blocks(decoder, blocks))
            results[shard] = _decode_fact_blocks(decoder, blocks)
            rounds = max(rounds, worker_rounds)
        return results, rounds

    def dred(
        self,
        stratum_index: int,
        changed: "dict[str, tuple[set, set]]",
        seed_parts: "list[set[Fact]]",
        pinned_parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "tuple[list[tuple[set[Fact], set[Fact]]], int] | None":
        if (
            self._pools is None
            or not self._partitioned
            or not self._local_mode(stratum_index)
        ):
            return None
        total = sum(len(part) for part in seed_parts)
        backlog = max((len(queue) for queue in self._pending), default=0)
        if total < self.min_round_rows and backlog < self.max_backlog_rows:
            self.parent_fallback_rounds += 1
            return None
        futures = {}
        for shard, pool in enumerate(self._pools):
            if not seed_parts[shard]:
                # No removed seeds homed here means no overdeletion can
                # start here; queued catch-up stays for the next dispatch.
                continue
            encoder = self._to_worker[shard]
            catchup = self._drain_pending(shard)
            added_packer = _BlockPacker()
            removed_packer = _BlockPacker()
            for name, (added_rows, removed_rows) in changed.items():
                for row in added_rows:
                    added_packer.add(name, encoder.encode_row(row))
                for row in removed_rows:
                    removed_packer.add(name, encoder.encode_row(row))
            added_blocks = added_packer.blocks()
            removed_blocks = removed_packer.blocks()
            seeds = _encode_fact_blocks(encoder, seed_parts[shard])
            pinned = _encode_fact_blocks(encoder, pinned_parts[shard])
            defs = encoder.take_defs()
            self._count_dispatch(catchup, added_blocks, removed_blocks, seeds, pinned)
            if self.measure_payloads:
                self._account(
                    (defs, catchup, added_blocks, removed_blocks, seeds, pinned),
                    (
                        _nested_blocks(encoder, catchup),
                        _nested_blocks(encoder, added_blocks),
                        _nested_blocks(encoder, removed_blocks),
                        _nested_blocks(encoder, seeds),
                        _nested_blocks(encoder, pinned),
                    ),
                )
            futures[shard] = pool.submit(
                _worker_dred,
                defs,
                catchup,
                stratum_index,
                added_blocks,
                removed_blocks,
                seeds,
                pinned,
            )
        results: "list[tuple[set[Fact], set[Fact]]]" = [
            (set(), set()) for _ in range(self.shard_count)
        ]
        rounds = 0
        for shard, future in futures.items():
            defs, over_blocks, reder_blocks, counters, worker_rounds = future.result()
            decoder = self._from_worker[shard]
            decoder.absorb(defs)
            _merge_counters(stats_parts[shard], counters)
            self._count_receipt(over_blocks, reder_blocks)
            if self.measure_payloads:
                self._account(
                    (defs, over_blocks, reder_blocks),
                    (
                        _nested_blocks(decoder, over_blocks),
                        _nested_blocks(decoder, reder_blocks),
                    ),
                )
            results[shard] = (
                _decode_fact_blocks(decoder, over_blocks),
                _decode_fact_blocks(decoder, reder_blocks),
            )
            rounds = max(rounds, worker_rounds)
        return results, rounds

    def counting(
        self,
        stratum_index: int,
        changed: "dict[str, tuple[set, set]]",
        pivot_parts: "list[dict[str, tuple[set, set]]]",
        stats_parts: "list[EvaluationStatistics]",
    ) -> "list[dict[Fact, int]] | None":
        if (
            self._pools is None
            or not self._partitioned
            or not self._reads_are_colocated(stratum_index)
        ):
            return None
        total = sum(
            len(added) + len(removed)
            for parts in pivot_parts
            for added, removed in parts.values()
        )
        backlog = max((len(queue) for queue in self._pending), default=0)
        if total < self.min_round_rows and backlog < self.max_backlog_rows:
            self.parent_fallback_rounds += 1
            return None
        futures = {}
        for shard, pool in enumerate(self._pools):
            parts = pivot_parts[shard]
            if not any(added or removed for added, removed in parts.values()):
                # No pivot rows homed here means no derivation is counted
                # here; queued catch-up stays for the next dispatch.
                continue
            encoder = self._to_worker[shard]
            catchup = self._drain_pending(shard)
            added_packer = _BlockPacker()
            removed_packer = _BlockPacker()
            for name, (added_rows, removed_rows) in changed.items():
                for row in added_rows:
                    added_packer.add(name, encoder.encode_row(row))
                for row in removed_rows:
                    removed_packer.add(name, encoder.encode_row(row))
            pivot_added_packer = _BlockPacker()
            pivot_removed_packer = _BlockPacker()
            for name, (added_rows, removed_rows) in parts.items():
                for row in added_rows:
                    pivot_added_packer.add(name, encoder.encode_row(row))
                for row in removed_rows:
                    pivot_removed_packer.add(name, encoder.encode_row(row))
            added_blocks = added_packer.blocks()
            removed_blocks = removed_packer.blocks()
            pivot_added = pivot_added_packer.blocks()
            pivot_removed = pivot_removed_packer.blocks()
            defs = encoder.take_defs()
            self._count_dispatch(
                catchup, added_blocks, removed_blocks, pivot_added, pivot_removed
            )
            if self.measure_payloads:
                self._account(
                    (defs, catchup, added_blocks, removed_blocks, pivot_added, pivot_removed),
                    (
                        _nested_blocks(encoder, catchup),
                        _nested_blocks(encoder, added_blocks),
                        _nested_blocks(encoder, removed_blocks),
                        _nested_blocks(encoder, pivot_added),
                        _nested_blocks(encoder, pivot_removed),
                    ),
                )
            futures[shard] = pool.submit(
                _worker_counting,
                defs,
                catchup,
                stratum_index,
                added_blocks,
                removed_blocks,
                pivot_added,
                pivot_removed,
            )
        results: "list[dict[Fact, int]]" = [{} for _ in range(self.shard_count)]
        for shard, future in futures.items():
            defs, counted_blocks, block_signs, counters = future.result()
            decoder = self._from_worker[shard]
            decoder.absorb(defs)
            _merge_counters(stats_parts[shard], counters)
            self._count_receipt(counted_blocks)
            if self.measure_payloads:
                self._account(
                    (defs, counted_blocks, block_signs),
                    (_nested_blocks(decoder, counted_blocks),),
                )
            results[shard] = _decode_counted_blocks(decoder, counted_blocks, block_signs)
        return results

    def repartition(self, keys: "dict[str, int]", rows_by_name: "dict[str, Collection]") -> None:
        if self._pools is None:
            return
        assert self._spec is not None
        # The caller already updated the spec's key table; split under the
        # *new* keys once, then ship each worker its whole new partition of
        # every rekeyed relation (with the catch-up queues drained first, so
        # the wholesale replacement lands on an up-to-date view).
        parts_by_name = {
            name: self._spec.partition_rows(name, rows)
            for name, rows in rows_by_name.items()
        }
        futures = []
        for shard, pool in enumerate(self._pools):
            encoder = self._to_worker[shard]
            catchup = self._drain_pending(shard)
            packer = _BlockPacker()
            moved = 0
            for name, parts in parts_by_name.items():
                for row in parts[shard]:
                    packer.add(name, encoder.encode_row(row))
                    moved += 1
            blocks = packer.blocks()
            defs = encoder.take_defs()
            self._exchanged += moved
            self._count_dispatch(catchup, blocks)
            if self.measure_payloads:
                self._account(
                    (defs, catchup, dict(keys), blocks),
                    (_nested_blocks(encoder, catchup), _nested_blocks(encoder, blocks)),
                )
            futures.append(
                pool.submit(_worker_repartition, defs, catchup, dict(keys), blocks)
            )
        for future in futures:
            future.result()

    def run_goal(
        self,
        shard: int,
        program: Program,
        seed_facts: "Collection[Fact]",
        stats: EvaluationStatistics,
    ) -> "dict[str, set]":
        """Evaluate a goal's magic *program* on the resident worker for *shard*.

        Drains only that worker's catch-up queue (the others stay lazy),
        ships the magic seeds, and returns the decoded result rows per
        relation.  The worker caches the program's evaluators, so repeated
        goals of the same shape skip plan compilation entirely.
        """
        if self._pools is None:
            raise EvaluationError("ProcessExecutor.run_goal called before attach()")
        pool = self._pools[shard]
        encoder = self._to_worker[shard]
        catchup = self._drain_pending(shard)
        seeds = _encode_fact_blocks(encoder, seed_facts)
        defs = encoder.take_defs()
        self._count_dispatch(catchup, seeds)
        if self.measure_payloads:
            self._account(
                (defs, catchup, seeds),
                (_nested_blocks(encoder, catchup), _nested_blocks(encoder, seeds)),
            )
        future = pool.submit(_worker_run_goal, defs, catchup, program, seeds)
        defs, blocks, counters = future.result()
        decoder = self._from_worker[shard]
        decoder.absorb(defs)
        _merge_counters(stats, counters)
        self._count_receipt(blocks)
        if self.measure_payloads:
            self._account((defs, blocks), _nested_blocks(decoder, blocks))
        rows: "dict[str, set]" = {}
        for name, arity, count, ids in blocks:
            rows.setdefault(name, set()).update(
                _decode_block_rows(decoder, arity, count, ids)
            )
        return rows

    # -- router mode (partitioned builds) ----------------------------------------------

    @property
    def supports_router(self) -> bool:
        """Whether whole-stratum router-mode fixpoints can run here."""
        return self._pools is not None and self._partitioned

    @property
    def supports_worker_goals(self) -> bool:
        """Partition-local goal queries run on resident workers when partitioned."""
        return self._pools is not None and self._partitioned

    def pending_rows(self, shard: int) -> int:
        """Rows queued for *shard* that have not been delivered yet."""
        return len(self._pending[shard]) if self._pools is not None else 0

    def router_start(self, names: "list[str]") -> "list[int]":
        """Seed every worker's frontier from its own partition of *names*."""
        assert self._pools is not None
        #: Rows already forwarded this stratum: several workers can derive
        #: the same foreign fact, but its home only needs it once.  Dedup
        #: runs per home link, on the *home link's* interned row — ids are
        #: canonical per link, so equal facts collide without the parent
        #: ever building a Path.
        self._routed = [set() for _ in range(self.shard_count)]
        futures = [pool.submit(_worker_router_start, names) for pool in self._pools]
        return [future.result() for future in futures]

    def router_round(
        self,
        active: "list[int]",
        stratum_index: int,
        stats_parts: "list[EvaluationStatistics]",
    ) -> "tuple[list[int], list[int], int]":
        """One router round over the *active* shards.

        Ships each worker its queued rows, forwards the returned foreign
        rows — re-interned definition-by-definition into the home link's id
        space, the parent never builds a fact — to their home queues, and
        returns ``(counted_new, frontier_left, shipped)`` where the two
        lists are indexed by shard (zero for inactive shards).
        """
        assert self._pools is not None
        futures = {}
        for shard in active:
            encoder = self._to_worker[shard]
            # No exchanged-row count here: router mode reports its exchange
            # via the returned `shipped` count — adding the catch-up
            # deliveries would double-count every routed row, and leaving
            # them queued in the counter would leak the whole build into the
            # next propagate()'s take_exchanged().
            catchup = self._drain_pending(shard, count=False)
            defs = encoder.take_defs()
            self._count_dispatch(catchup)
            if self.measure_payloads:
                self._account((defs, catchup), _nested_blocks(encoder, catchup))
            futures[shard] = self._pools[shard].submit(
                _worker_router_round, defs, catchup, stratum_index
            )
        counted = [0] * self.shard_count
        frontier_left = [0] * self.shard_count
        shipped = 0
        for shard, future in futures.items():
            defs, ships, counted_new, left, counters = future.result()
            decoder = self._from_worker[shard]
            decoder.absorb(defs)
            _merge_counters(stats_parts[shard], counters)
            self._count_receipt(ships)
            if self.measure_payloads:
                self._account((defs, ships), _nested_blocks(decoder, ships))
            counted[shard] = counted_new
            frontier_left[shard] = left
            for home, name, arity, count, ids in ships:
                home_encoder = self._to_worker[home]
                routed = self._routed[home]
                for row in _iter_id_rows(arity, count, ids):
                    out_row = tuple(
                        home_encoder.def_id(decoder.definition(ident)) for ident in row
                    )
                    key = (name, out_row)
                    if key in routed:
                        continue
                    routed.add(key)
                    self._pending[home].append((True, name, out_row, True))
                    shipped += 1
        return counted, frontier_left, shipped

    def router_dump(self, names: "list[str]") -> "list[dict[str, list[tuple[Path, ...]]]]":
        """Fetch every worker's partition of *names*, decoded, at end of stratum."""
        assert self._pools is not None
        futures = [pool.submit(_worker_router_dump, names) for pool in self._pools]
        dumps: "list[dict[str, list[tuple[Path, ...]]]]" = []
        for shard, future in enumerate(futures):
            defs, blocks = future.result()
            decoder = self._from_worker[shard]
            decoder.absorb(defs)
            self._count_receipt(blocks)
            if self.measure_payloads:
                self._account((defs, blocks), _nested_blocks(decoder, blocks))
            dump: "dict[str, list[tuple[Path, ...]]]" = {}
            for name, arity, count, ids in blocks:
                dump.setdefault(name, []).extend(
                    _decode_block_rows(decoder, arity, count, ids)
                )
            dumps.append(dump)
        return dumps

    def close(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True, cancel_futures=True)
            self._pools = None
            self._pending = []
            self._to_worker = []
            self._from_worker = []
            self._routed = []
            self._modes = ()


# -- the sharded fixpoint --------------------------------------------------------------


class ShardedFixpoint:
    """Shard-parallel semi-naive evaluation of one program.

    The fixpoint owns the sharding of a single evaluation lineage: a
    :class:`ShardingSpec` (where rows live), a :class:`ParallelExecutor`
    (how rounds run), the shared :class:`ProgramEvaluators` (compiled join
    plans, reused across rounds and — through the query session — across
    queries and updates), and the :class:`ShardedInstance` mirror of the
    authoritative instance.

    It is both a standalone evaluator (:meth:`evaluate` replaces
    :func:`~repro.engine.fixpoint.evaluate_program` for the sharded case)
    and the round engine :class:`~repro.engine.maintenance.MaintainedFixpoint`
    delegates to in its sharded mode (:meth:`stratum_fixpoint` for builds,
    :meth:`propagate` for insertion cascades, :meth:`absorb` to keep the
    mirror and the worker replicas in step with parent-side phases).

    The rounds are semi-naive by construction; the ``strategy`` knob of the
    single-process engine does not apply (a naive sharded round would make
    every worker redo the whole instance, which defeats the partitioning).
    """

    def __init__(
        self,
        program: Program,
        spec: ShardingSpec,
        executor: "ParallelExecutor | None" = None,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        *,
        execution: ExecutionMode = "indexed",
        evaluators: "ProgramEvaluators | None" = None,
        plan: "ShardingPlan | None" = None,
    ):
        if executor is None:
            executor = SequentialExecutor(spec.shard_count)
        if executor.shard_count != spec.shard_count:
            raise EvaluationError(
                f"executor has {executor.shard_count} shards but the spec asks for "
                f"{spec.shard_count}"
            )
        if evaluators is None:
            evaluators = ProgramEvaluators(limits, execution=execution)
        elif evaluators.execution != execution or evaluators.limits != limits:
            raise EvaluationError(
                f"the supplied ProgramEvaluators were built for "
                f"execution={evaluators.execution!r} with limits {evaluators.limits}, "
                f"but this fixpoint asks for execution={execution!r} with limits {limits}"
            )
        self.program = program
        self.spec = spec
        self.executor = executor
        self.limits = limits
        self.execution: ExecutionMode = execution
        self.evaluators = evaluators
        #: The per-stratum sharding plan.  When the caller hands over a
        #: consumer-aligned plan (:func:`~repro.storage.partition.choose_sharding_plan`)
        #: its modes, replication set, and repartition steps drive the
        #: execution; otherwise :func:`~repro.storage.partition.plan_for_spec`
        #: derives the modes the given spec supports, which reproduces the
        #: legacy aligned-or-replicated behaviour exactly.
        self.plan = plan if plan is not None else plan_for_spec(program, spec)
        #: Whether every stratum runs sound on bare partitions under the
        #: spec: process workers then own 1/N of the data (plus full copies
        #: of the plan's replicated relations), and only genuinely
        #: cross-shard rows are exchanged.  Otherwise workers keep full
        #: replicas, which is always correct.
        self.partitioned = self.plan.partitioned
        #: The partitioned mirror of the instance being evaluated (set by
        #: :meth:`attach`); the serving layer reads shard sizes off it.
        self.sharded: "ShardedInstance | None" = None
        #: Extension attempts accumulated per shard across all rounds since
        #: the last :meth:`attach` — the work-partitioning evidence the
        #: sharding benchmark asserts near-linearity on.
        self.per_shard_extension_attempts: list[int] = [0] * spec.shard_count

    # -- lifecycle ---------------------------------------------------------------------

    def attach(self, current: Instance) -> None:
        """Bind this fixpoint (mirror, workers, counters) to *current*."""
        if self.plan.repartitions:
            # Per-stratum repartition steps mutate the spec's key table as
            # strata enter; every fresh evaluation starts from the plan's
            # entry keys again.
            self.spec.keys.clear()
            self.spec.keys.update(self.plan.keys)
        self.sharded = ShardedInstance.from_instance(current, self.spec)
        self.per_shard_extension_attempts = [0] * self.spec.shard_count
        self.executor.attach(
            self.program,
            self.limits,
            self.execution,
            current,
            spec=self.spec,
            partitioned=self.partitioned,
            partitions=self.sharded.shards,
            modes=self.plan.modes,
        )

    def absorb(self, added: "Collection[Fact]", removed: "Collection[Fact]" = ()) -> None:
        """Mirror facts the owner applied to the authoritative instance.

        Keeps the partitioned view and (lazily, via the executor's catch-up
        queues) the worker replicas consistent with parent-side phases that
        do not run through :meth:`round` — counting maintenance, EDB deltas,
        overdeletion, rederivation.
        """
        if self.sharded is None:
            return
        for fact in removed:
            self.sharded.discard_fact(fact)
        for fact in added:
            self.sharded.add_fact(fact)
        self.executor.sync(added, removed)

    def close(self) -> None:
        """Release the executor's workers."""
        self.executor.close()

    # -- evaluation --------------------------------------------------------------------

    def evaluate(
        self,
        instance: Instance,
        *,
        seed_facts: "Iterable[Fact] | None" = None,
        statistics: "EvaluationStatistics | None" = None,
    ) -> Instance:
        """Evaluate the program shard-parallel; extensionally identical to
        :func:`~repro.engine.fixpoint.evaluate_program` on the same inputs."""
        if statistics is None:
            statistics = EvaluationStatistics()
        current = instance.copy()
        if seed_facts is not None:
            for fact in seed_facts:
                current.add_fact(fact)
        self.attach(current)
        for index in range(len(self.program.strata)):
            rounds = self.stratum_fixpoint(index, current, statistics)
            statistics.merge_stratum(rounds)
        for name in self.program.idb_relation_names():
            current.ensure_relation(name)
        return current

    def stratum_fixpoint(
        self, index: int, current: Instance, statistics: EvaluationStatistics
    ) -> int:
        """Run stratum *index* to its fixpoint on *current*; return the rounds.

        The single-process engine opens with one naive round; here the
        opening round is the semi-naive round whose delta is *everything*
        (each derivation trivially has a body fact in the delta, so the two
        are equivalent) — which is exactly the shape the partitioning wants.
        The only rules that trick misses are those with no positive body
        predicate at all (ground facts, negation/equation-only bodies):
        delta restriction never fires them, so they run once upfront.
        """
        stratum = self.program.strata[index]
        self._maybe_repartition(index, current, statistics)
        for rule in stratum:
            current.ensure_relation(rule.head.name)
        bootstrap: set[Fact] = set()
        positive: set[str] = set()
        for evaluator in self.evaluators.for_stratum(stratum):
            if evaluator.body_relation_names:
                positive |= evaluator.body_relation_names
                continue
            statistics.rule_applications += 1
            for fact in evaluator.derive(current, statistics=statistics):
                if fact not in current:
                    bootstrap.add(fact)
        for fact in bootstrap:
            current.add_fact(fact)
        statistics.facts_derived += len(bootstrap)
        if bootstrap:
            self.absorb(bootstrap)
        if self.executor.supports_router:
            rounds = self._router_stratum(index, current, sorted(positive), statistics)
            return max(rounds, 1)
        delta = {
            Fact(name, row)
            for name in positive & current.relation_names
            for row in current.relation(name)
        }
        rounds, _ = self.propagate(index, current, delta, statistics)
        return max(rounds, 1)

    def _maybe_repartition(
        self, index: int, current: Instance, statistics: EvaluationStatistics
    ) -> None:
        """Execute the plan's repartition step for stratum *index*, if it pays.

        A one-shot exchange at stratum entry: the spec's key table adopts
        the stratum-local keys, the mirror re-splits the rekeyed relations,
        and the executor wholesale-replaces the worker partitions (draining
        the catch-up queues first).  The cost gate compares the rows that
        would move against the stratum's body size — repartitioning a huge
        relation to save a small stratum's exchange never pays.
        """
        changes = self.plan.repartitions.get(index)
        if not changes:
            return
        live = {
            name: key
            for name, key in changes.items()
            if self.spec.keys.get(name) != key
        }
        if not live:
            return
        stratum = self.program.strata[index]
        body_rows = sum(
            len(current.relation(name))
            for name in stratum.body_relation_names()
            if name in current.relation_names
        )
        move_rows = sum(
            len(current.relation(name))
            for name in live
            if name in current.relation_names
        )
        if not repartition_pays(move_rows, body_rows, self.spec.shard_count):
            return
        rows_by_name = {
            name: (
                set(current.relation(name))
                if name in current.relation_names
                else set()
            )
            for name in live
        }
        self.spec.keys.update(live)
        assert self.sharded is not None
        for name, rows in rows_by_name.items():
            for shard, part in enumerate(self.spec.partition_rows(name, rows)):
                self.sharded.shards[shard].set_relation_rows(name, set(part))
        self.executor.repartition(live, rows_by_name)
        self._drain_exchange(statistics)

    def _router_stratum(
        self,
        index: int,
        current: Instance,
        body_names: "list[str]",
        statistics: EvaluationStatistics,
    ) -> int:
        """A whole stratum fixpoint with the parent acting as a row router.

        Every worker seeds its frontier from its own partition, retains its
        home derivations as the next frontier, and ships only the genuinely
        cross-shard rows — which the parent forwards without decoding.  The
        head partitions are collected once at the end and folded into the
        authoritative instance and the mirror.
        """
        executor = self.executor
        stratum = self.program.strata[index]
        frontier_left = executor.router_start(body_names)
        iterations = 0
        derived = 0
        while True:
            active = [
                shard
                for shard in range(self.spec.shard_count)
                if frontier_left[shard] or executor.pending_rows(shard)
            ]
            if not active:
                break
            iterations += 1
            self.limits.check_iterations(iterations)
            stats_parts = [EvaluationStatistics() for _ in range(self.spec.shard_count)]
            counted, frontier_left, shipped = executor.router_round(
                active, index, stats_parts
            )
            statistics.shard_rounds += 1
            statistics.cross_shard_facts += shipped
            for shard, shard_stats in enumerate(stats_parts):
                self.per_shard_extension_attempts[shard] += shard_stats.extension_attempts
                statistics.absorb_counters(shard_stats)
            derived += sum(counted)
            self.limits.check_fact_count(current.fact_count() + derived)
        statistics.facts_derived += derived
        heads = sorted(stratum.head_relation_names())
        assert self.sharded is not None
        for shard, dump in enumerate(executor.router_dump(heads)):
            for name in heads:
                self.sharded.shards[shard].set_relation_rows(name, set(dump.get(name, ())))
        for name in heads:
            merged: set = set()
            for shard_instance in self.sharded.shards:
                merged |= shard_instance.relation(name)
            current.set_relation_rows(name, merged)
        replicated_heads = set(heads) & self.spec.replicated
        if replicated_heads:
            # A replicated IDB relation (derived here, read — possibly under
            # negation — by later strata) must reach every worker's replica;
            # the router only home-routed its rows.  sync() broadcasts
            # replicated adds, and worker-side re-adds are idempotent.
            self.executor.sync(
                {
                    Fact(name, row)
                    for name in replicated_heads
                    for row in current.relation(name)
                }
            )
        self._drain_exchange(statistics)
        return iterations

    def propagate(
        self,
        index: int,
        current: Instance,
        delta_facts: "set[Fact]",
        statistics: EvaluationStatistics,
        *,
        collect: bool = False,
        iterations_before: int = 0,
    ) -> "tuple[int, set[Fact]]":
        """Shard-parallel analogue of :func:`~repro.engine.fixpoint.propagate_delta`.

        *delta_facts* must already be present in *current*.  Each round
        partitions the delta by home shard, runs the per-shard delta-
        restricted applications (remotely or in-process, the executor's
        call), merges and applies the net-new facts, and queues the
        cross-shard rows for the replicas.
        """
        if self.sharded is None:
            raise EvaluationError("ShardedFixpoint.propagate called before attach()")
        iterations = iterations_before
        added: set[Fact] = set()
        parts = self._delta_parts(index, delta_facts)
        if any(parts):
            resident = self._propagate_resident(index, current, parts, statistics)
            if resident is not None:
                rounds, net = resident
                if collect:
                    added |= net
                return rounds, added
        while any(parts):
            iterations += 1
            self.limits.check_iterations(iterations)
            stats_parts = [EvaluationStatistics() for _ in range(self.spec.shard_count)]
            results = self.executor.round(index, parts, stats_parts)
            remote = results is not None
            if results is None:
                results = self._local_round(index, parts, stats_parts, current)
            statistics.shard_rounds += 1
            # One pass per derived fact: membership + apply on the
            # authoritative instance (storage-level, the facts come from the
            # rule evaluators and are well-formed), home routing for the
            # mirror and the next round's frontier.
            net: set[Fact] = set()
            parts = [set() for _ in range(self.spec.shard_count)]
            for shard_new in results:
                for fact in shard_new:
                    name = fact.relation
                    storage = current.storage(name)
                    if storage is None:
                        current.ensure_relation(name)
                        storage = current.storage(name)
                    if not storage.add(fact.paths):
                        continue
                    net.add(fact)
                    home = self.spec.shard_of_fact(fact)
                    mirror = self.sharded.shards[home]
                    mirror.ensure_relation(name)
                    mirror.storage(name).add(fact.paths)
                    parts[home].add(fact)
            for shard, shard_stats in enumerate(stats_parts):
                self.per_shard_extension_attempts[shard] += shard_stats.extension_attempts
                statistics.absorb_counters(shard_stats)
            statistics.facts_derived += len(net)
            self.limits.check_fact_count(current.fact_count())
            self.executor.sync(net, derived_by=results if remote else None)
            statistics.cross_shard_facts += self.executor.take_exchanged()
            if collect:
                added |= net
        self._drain_exchange(statistics)
        return iterations - iterations_before, added

    def _delta_parts(self, index: int, delta_facts: "set[Fact]") -> "list[set[Fact]]":
        """Partition an update delta for stratum *index* by home shard.

        In ``local`` mode on partitioned process workers, replicated-
        relation facts must reach *every* worker — a local-mode pivot is
        only complete where the valuation's home rows live, and only the
        broadcast guarantees the owning worker sees the delta.  In-process
        executors share the authoritative instance, so ownership routing is
        always complete (and avoids pivoting the same row N times).
        """
        if (
            self.partitioned
            and self.spec.replicated
            and self.executor.kind == "process"
            and self.plan.mode(index) == "local"
        ):
            return self.spec.delta_parts(delta_facts)
        return self.spec.partition_facts(delta_facts)

    def _propagate_resident(
        self,
        index: int,
        current: Instance,
        parts: "list[set[Fact]]",
        statistics: EvaluationStatistics,
    ) -> "tuple[int, set[Fact]] | None":
        """Run the whole cascade worker-resident, or ``None`` to fall back.

        One dispatch per worker instead of one per round: each worker
        chases its frontier to a local fixpoint (sound for ``local``-mode
        strata) and returns only its net-new home facts.
        """
        stats_parts = [EvaluationStatistics() for _ in range(self.spec.shard_count)]
        outcome = self.executor.run_stratum(index, parts, stats_parts)
        if outcome is None:
            return None
        results, rounds = outcome
        assert self.sharded is not None
        net: set[Fact] = set()
        for shard_new in results:
            for fact in shard_new:
                name = fact.relation
                storage = current.storage(name)
                if storage is None:
                    current.ensure_relation(name)
                    storage = current.storage(name)
                if not storage.add(fact.paths):
                    continue
                net.add(fact)
                home = self.spec.shard_of_fact(fact)
                mirror = self.sharded.shards[home]
                mirror.ensure_relation(name)
                mirror.storage(name).add(fact.paths)
        for shard, shard_stats in enumerate(stats_parts):
            self.per_shard_extension_attempts[shard] += shard_stats.extension_attempts
            statistics.absorb_counters(shard_stats)
        statistics.facts_derived += len(net)
        statistics.shard_rounds += rounds
        self.limits.check_fact_count(current.fact_count())
        self.executor.sync(net, derived_by=results)
        statistics.cross_shard_facts += self.executor.take_exchanged()
        self._drain_exchange(statistics)
        return max(rounds, 1), net

    def dred_stratum(
        self,
        index: int,
        changed: "dict[str, tuple[set, set]]",
        seeds: "set[Fact]",
        pinned: "Collection[Fact]",
        statistics: EvaluationStatistics,
    ) -> "tuple[set[Fact], set[Fact]] | None":
        """Run DRed's overdeletion + rederivation shard-parallel, or ``None``.

        Routes the removed-fact seeds (replicated relations broadcast, the
        overdeletion pivot must run where the affected valuations live) and
        the per-shard pinned facts to the workers; each runs the cascade
        and the rederivation probes against its resident partition.  The
        caller applies the returned facts to the authoritative instance
        only: every returned fact is a home row of the worker that reported
        it (local-mode strata never derive foreign rows), so the worker
        replicas are already up to date and no catch-up is queued — this
        method maintains the parent-side mirror itself.
        """
        if self.sharded is None:
            return None
        seed_parts = self.spec.delta_parts(seeds)
        pinned_parts = self.spec.partition_facts(pinned)
        stats_parts = [EvaluationStatistics() for _ in range(self.spec.shard_count)]
        outcome = self.executor.dred(
            index, changed, seed_parts, pinned_parts, stats_parts
        )
        if outcome is None:
            return None
        results, rounds = outcome
        overdeleted: set[Fact] = set()
        rederived: set[Fact] = set()
        for shard_over, shard_reder in results:
            overdeleted |= shard_over
            rederived |= shard_reder
        for fact in overdeleted:
            self.sharded.discard_fact(fact)
        for fact in rederived:
            self.sharded.add_fact(fact)
        for shard, shard_stats in enumerate(stats_parts):
            self.per_shard_extension_attempts[shard] += shard_stats.extension_attempts
            statistics.absorb_counters(shard_stats)
        statistics.maintenance_rounds += rounds + (1 if overdeleted else 0)
        statistics.facts_derived += len(rederived)
        statistics.cross_shard_facts += self.executor.take_exchanged()
        self._drain_exchange(statistics)
        return overdeleted, rederived

    def counting_stratum(
        self,
        index: int,
        changed: "dict[str, tuple[set, set]]",
        statistics: EvaluationStatistics,
    ) -> "dict[Fact, int] | None":
        """Run a counting stratum's delta joins shard-parallel, or ``None``.

        Routes each shard its home slice of the pivot rows (plus the full
        delta for overlay rebuild) and sums the returned signed counts —
        exact because the local/aligned read proofs home every derivation
        at exactly one shard.  Declines when any changed relation is
        replicated: a replicated delta row has no unique home, so pivoting
        on it at one shard would miss derivations anchored elsewhere, and
        pivoting everywhere would double count.  The caller still owns the
        count state and the net add/remove decisions.
        """
        if self.sharded is None:
            return None
        if any(name in self.spec.replicated for name in changed):
            return None
        pivot_parts: "list[dict[str, tuple[set, set]]]" = [
            {} for _ in range(self.spec.shard_count)
        ]
        for name, (added_rows, removed_rows) in changed.items():
            for polarity, rows in ((0, added_rows), (1, removed_rows)):
                for shard, shard_rows in enumerate(self.spec.partition_rows(name, rows)):
                    if not shard_rows:
                        continue
                    entry = pivot_parts[shard].setdefault(name, (set(), set()))
                    entry[polarity].update(shard_rows)
        stats_parts = [EvaluationStatistics() for _ in range(self.spec.shard_count)]
        outcome = self.executor.counting(index, changed, pivot_parts, stats_parts)
        if outcome is None:
            return None
        delta_counts: "dict[Fact, int]" = {}
        for shard_counts in outcome:
            for fact, value in shard_counts.items():
                delta_counts[fact] = delta_counts.get(fact, 0) + value
        for shard, shard_stats in enumerate(stats_parts):
            self.per_shard_extension_attempts[shard] += shard_stats.extension_attempts
            statistics.absorb_counters(shard_stats)
        statistics.cross_shard_facts += self.executor.take_exchanged()
        self._drain_exchange(statistics)
        return delta_counts

    def run_goal(
        self,
        shard: int,
        program: Program,
        seed_facts: "Collection[Fact]",
        statistics: EvaluationStatistics,
    ) -> "dict[str, set] | None":
        """Evaluate a goal program on the resident worker owning *shard*.

        Returns the result rows per relation, or ``None`` when the executor
        has no resident workers (the caller evaluates parent-side).  Only
        sound when the goal's shard footprint is exactly ``{shard}``.
        """
        if not self.executor.supports_worker_goals:
            return None
        rows = self.executor.run_goal(shard, program, seed_facts, statistics)
        self._drain_exchange(statistics)
        return rows

    def _drain_exchange(self, statistics: EvaluationStatistics) -> None:
        """Fold the executor's batch/byte exchange counters into *statistics*."""
        batches, payload = self.executor.take_exchange_stats()
        statistics.exchange_batches += batches
        statistics.exchanged_bytes += payload

    def _local_round(
        self,
        index: int,
        parts: "list[set[Fact]]",
        stats_parts: "list[EvaluationStatistics]",
        current: Instance,
    ) -> "list[set[Fact]]":
        """One in-process round: the shards run in order against *current*."""
        evaluators = self.evaluators.for_stratum(self.program.strata[index])
        delta = Instance()
        results: "list[set[Fact]]" = []
        for shard, part in enumerate(parts):
            if not part:
                results.append(set())
                continue
            delta.replace_with(part)
            changed = {fact.relation for fact in part}
            results.append(
                _apply_rules_seminaive(evaluators, current, delta, changed, stats_parts[shard])
            )
        return results


# -- tabling hook ----------------------------------------------------------------------


def goal_shard_footprint(
    compiled: "MagicProgram",
    spec: ShardingSpec,
    seed_binding: "dict[int, Path]",
) -> "frozenset[int] | None":
    """The shards a tabled goal's answers can depend on, or ``None`` for all.

    Sound and deliberately narrow: a footprint is only claimed when *every*
    EDB access of the entry's magic program is provably pinned — at the
    relation's shard-key position — to a value fixed by the seed.  Then a
    base row homed elsewhere can never satisfy any body occurrence of any
    rule, so updates routed to other shards cannot move the entry's answers
    (they are mirrored into its base copy without any propagation).

    The check accepts an EDB occurrence — positive *or negated* — when its
    key-position component is a ground constant, or a lone variable that the
    *seed* magic predicate of the same rule binds to a seed path: any base
    row that could satisfy (or, negated, block) the occurrence then carries
    that value at the relation's shard-key position, so its home shard is in
    the footprint.  Occurrences of *replicated* relations are skipped
    without pinning — their updates are broadcast and maintained through
    every entry regardless of home shard (see
    :meth:`~repro.engine.tabling.AnswerTable.apply_update`).  Recursion is
    rejected outright — a recursive goal (reachability) reaches rows an
    unbounded number of joins away from the seed, so its true footprint is
    every shard.
    """
    program = compiled.program
    if program.uses_recursion():
        return None
    seed_fact = compiled.seed_fact(seed_binding)
    seed_name = compiled.magic_seed_relation
    edb = program.edb_relation_names() - {seed_name}
    footprint: set[int] = set()
    for rule in program.rules():
        seed_values: dict = {}
        for literal in rule.body:
            if not (literal.positive and literal.is_predicate()):
                continue
            predicate = literal.atom
            if predicate.name != seed_name:
                continue
            for component, value in zip(predicate.components, seed_fact.paths):
                items = component.items
                if len(items) == 1 and not isinstance(items[0], str):
                    seed_values[items[0]] = value
        for literal in rule.body:
            if not literal.is_predicate():
                continue
            predicate = literal.atom
            if predicate.name not in edb:
                continue
            if predicate.name in spec.replicated:
                continue
            key = spec.key_for(predicate.name)
            if key is None or key >= len(predicate.components):
                return None
            component = predicate.components[key]
            items = component.items
            if not component.variables():
                if not all(isinstance(item, str) for item in items):
                    return None  # a packed constant: routing hashes it differently
                value = Path(tuple(items))
            elif len(items) == 1 and items[0] in seed_values:
                value = seed_values[items[0]]
            else:
                return None
            footprint.add(stable_hash_path(value) % spec.shard_count)
    return frozenset(footprint)
