"""Evaluation of a single rule against an instance (Section 2.3).

``I, ν ⊨ L`` is defined as expected: a positive predicate is satisfied when
the fact ``ν(L)`` is in ``I``; an equation when both sides denote the same
path; a negated atom when the atom is not satisfied.  A rule fires for every
valuation satisfying its body, producing the head fact.

The evaluator enumerates the satisfying valuations of a body by processing
its literals in a *join order*:

1. positive predicates, matched against the facts of the instance (binding
   variables by associative matching);
2. positive equations, each processed once one of its sides is fully bound —
   the bound side is evaluated to a path and the other side is matched
   against it (this is exactly how "limited" variables become bound);
3. negated literals, checked last (safety guarantees their variables are
   bound by then).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.match import match_expression, match_fact
from repro.engine.valuation import Valuation
from repro.errors import EvaluationError, UnsafeRuleError
from repro.model.instance import Fact, Instance
from repro.syntax.literals import Equation, Literal, Predicate
from repro.syntax.rules import Rule

__all__ = ["plan_body_order", "satisfying_valuations", "evaluate_rule", "RuleEvaluator"]


def plan_body_order(rule: Rule) -> list[Literal]:
    """Return the rule's body literals in a safe-to-evaluate order.

    Positive predicates come first (smaller number of variables first, a
    cheap join-ordering heuristic), then positive equations in an order in
    which each has at least one side bound when reached, then all negated
    literals.  Raises :class:`UnsafeRuleError` if no such order exists,
    which for safe rules cannot happen.
    """
    positive_predicates = [
        literal for literal in rule.body if literal.positive and literal.is_predicate()
    ]
    positive_equations = [
        literal for literal in rule.body if literal.positive and literal.is_equation()
    ]
    negatives = [literal for literal in rule.body if literal.negative]

    positive_predicates.sort(key=lambda literal: len(literal.variables()))

    bound: set = set()
    for literal in positive_predicates:
        bound.update(literal.variables())

    ordered_equations: list[Literal] = []
    pending = list(positive_equations)
    while pending:
        progressed = False
        for literal in list(pending):
            equation: Equation = literal.atom  # type: ignore[assignment]
            left_bound = equation.lhs.variables() <= bound
            right_bound = equation.rhs.variables() <= bound
            if left_bound or right_bound:
                ordered_equations.append(literal)
                bound.update(equation.variables())
                pending.remove(literal)
                progressed = True
        if not progressed:
            raise UnsafeRuleError(
                f"cannot order the equations of rule {rule}: no side becomes fully bound"
            )

    return positive_predicates + ordered_equations + negatives


def _extend_with_predicate(
    valuations: Iterable[Valuation],
    predicate: Predicate,
    instance: Instance,
    limits: EvaluationLimits,
) -> Iterator[Valuation]:
    rows = instance.relation(predicate.name)
    count = 0
    for valuation in valuations:
        for row in rows:
            fact = Fact(predicate.name, row)
            for extended in match_fact(predicate, fact, valuation):
                count += 1
                limits.check_derivations(count)
                yield extended


def _extend_with_equation(
    valuations: Iterable[Valuation],
    equation: Equation,
    limits: EvaluationLimits,
) -> Iterator[Valuation]:
    count = 0
    for valuation in valuations:
        left_ready = valuation.can_evaluate(equation.lhs)
        right_ready = valuation.can_evaluate(equation.rhs)
        if left_ready and right_ready:
            if valuation.apply_to_expression(equation.lhs) == valuation.apply_to_expression(
                equation.rhs
            ):
                count += 1
                limits.check_derivations(count)
                yield valuation
            continue
        if left_ready:
            target = valuation.apply_to_expression(equation.lhs)
            other = equation.rhs
        elif right_ready:
            target = valuation.apply_to_expression(equation.rhs)
            other = equation.lhs
        else:
            raise EvaluationError(
                f"equation {equation} reached with neither side bound; the rule is unsafe"
            )
        for extended in match_expression(other, target, valuation):
            count += 1
            limits.check_derivations(count)
            yield extended


def _filter_negative(
    valuations: Iterable[Valuation],
    literal: Literal,
    instance: Instance,
) -> Iterator[Valuation]:
    """Keep only the valuations under which the negated literal is satisfied."""
    for valuation in valuations:
        if _check_negative(literal, valuation, instance):
            yield valuation


def _check_negative(literal: Literal, valuation: Valuation, instance: Instance) -> bool:
    atom = literal.atom
    if isinstance(atom, Predicate):
        fact = valuation.apply_to_predicate(atom)
        return fact not in instance
    if isinstance(atom, Equation):
        lhs = valuation.apply_to_expression(atom.lhs)
        rhs = valuation.apply_to_expression(atom.rhs)
        return lhs != rhs
    raise EvaluationError(f"unexpected negated atom {atom!r}")  # pragma: no cover


def satisfying_valuations(
    rule: Rule,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    order: Sequence[Literal] | None = None,
    frontier: "dict[int, Instance] | None" = None,
) -> Iterator[Valuation]:
    """Yield the valuations (restricted to the rule's variables) satisfying the body.

    When *frontier* is given it maps positions in *order* to an alternative
    instance to use for the positive predicate at that position; this is how
    the semi-naive strategy restricts one body atom to the newly derived facts.
    """
    plan = list(order) if order is not None else plan_body_order(rule)
    valuations: Iterable[Valuation] = [Valuation.EMPTY]

    for position, literal in enumerate(plan):
        if literal.positive and literal.is_predicate():
            source = instance
            if frontier is not None and position in frontier:
                source = frontier[position]
            valuations = _extend_with_predicate(
                valuations, literal.atom, source, limits  # type: ignore[arg-type]
            )
        elif literal.positive and literal.is_equation():
            valuations = _extend_with_equation(valuations, literal.atom, limits)  # type: ignore[arg-type]
        else:
            # Negative literals filter the stream of candidate valuations.
            valuations = _filter_negative(valuations, literal, instance)

    yield from valuations


def evaluate_rule(
    rule: Rule,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    frontier: "dict[int, Instance] | None" = None,
    order: Sequence[Literal] | None = None,
) -> set[Fact]:
    """Return the head facts derivable from *instance* by a single application of *rule*."""
    derived: set[Fact] = set()
    for valuation in satisfying_valuations(
        rule, instance, limits, order=order, frontier=frontier
    ):
        fact = valuation.apply_to_predicate(rule.head)
        for path in fact.paths:
            limits.check_path_length(len(path))
        derived.add(fact)
    return derived


class RuleEvaluator:
    """Pre-plans a rule's join order and evaluates it repeatedly.

    Fixpoint computation evaluates the same rules many times; planning the
    body order once per rule keeps the inner loop lean.
    """

    def __init__(self, rule: Rule, limits: EvaluationLimits = DEFAULT_LIMITS):
        self.rule = rule
        self.limits = limits
        self.order = plan_body_order(rule)
        #: Positions (in the planned order) of positive body predicates, by relation name.
        self.predicate_positions: dict[str, list[int]] = {}
        for position, literal in enumerate(self.order):
            if literal.positive and literal.is_predicate():
                name = literal.atom.name  # type: ignore[union-attr]
                self.predicate_positions.setdefault(name, []).append(position)

    def derive(
        self, instance: Instance, frontier: "dict[int, Instance] | None" = None
    ) -> set[Fact]:
        """Evaluate the rule once against *instance* (optionally delta-restricted)."""
        return evaluate_rule(
            self.rule, instance, self.limits, frontier=frontier, order=self.order
        )
