"""Evaluation of a single rule against an instance (Section 2.3).

``I, ν ⊨ L`` is defined as expected: a positive predicate is satisfied when
the fact ``ν(L)`` is in ``I``; an equation when both sides denote the same
path; a negated atom when the atom is not satisfied.  A rule fires for every
valuation satisfying its body, producing the head fact.

The evaluator enumerates the satisfying valuations of a body by processing
its literals in a *join order*.  Two execution modes are supported:

* ``"scan"`` — the seed strategy: a static order (positive predicates first,
  fewest variables first, then equations, then negations), each predicate
  extended by scanning every row of its relation;
* ``"indexed"`` — the default: a *bound-aware greedy planner* re-selects the
  next literal at evaluation time from the variables already bound and the
  live cardinalities of the relations involved, and each predicate extension
  consults the storage layer's indexes (exact tuple, exact argument path,
  ground first atom, fixed argument length — see :mod:`repro.storage`) to
  prune the candidate rows before falling back to associative matching;
* ``"compiled"`` — the hot-path backend: rules in the simple fragment (every
  component a lone variable or ground, no equations) are lowered once to
  id-space hash-join plans over interned terms (:mod:`repro.engine.compiled`,
  :mod:`repro.storage.columnar`); everything else runs as in indexed mode.

All modes enumerate exactly the same derivations; the indexed mode merely
attempts far fewer row matches than scan (the ``extension_attempts``
statistics counter makes the difference measurable, and
``benchmarks/bench_join_planning.py`` records it), and the compiled mode
removes the per-row interpreter constant on top.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence
from typing import Literal as TypingLiteral

from repro.engine.compiled import compile_rule
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.match import match_components, match_expression
from repro.engine.valuation import Valuation
from repro.errors import EvaluationError, UnsafeRuleError
from repro.model.instance import Fact, Instance
from repro.storage import EMPTY_ROWS
from repro.syntax.expressions import AtomVariable, PathExpression, PathVariable
from repro.syntax.literals import Equation, Literal, Predicate
from repro.syntax.rules import Rule

__all__ = [
    "ExecutionMode",
    "plan_body_order",
    "plan_literal_sequence",
    "satisfying_valuations",
    "evaluate_rule",
    "RuleEvaluator",
]

#: How predicate extensions source their candidate rows: ``"indexed"`` prunes
#: through the storage indexes under a bound-aware greedy plan; ``"scan"`` is
#: the seed nested-loop strategy kept as an ablation baseline; ``"compiled"``
#: lowers simple rules to id-space hash joins over interned terms
#: (:mod:`repro.engine.compiled`) and behaves exactly like ``"indexed"`` for
#: everything that does not compile.
ExecutionMode = TypingLiteral["indexed", "scan", "compiled"]


def plan_body_order(rule: Rule) -> list[Literal]:
    """Return the rule's body literals in a safe-to-evaluate static order.

    Positive predicates come first (smaller number of variables first, a
    cheap join-ordering heuristic), then positive equations in an order in
    which each has at least one side bound when reached, then all negated
    literals.  Raises :class:`UnsafeRuleError` if no such order exists,
    which for safe rules cannot happen.

    This is the seed planner; it remains the ``"scan"``-mode order and the
    canonical *position space* that delta frontiers refer to.  The bound-aware
    planner (:func:`plan_literal_sequence`) permutes these positions per
    evaluation.
    """
    positive_predicates = [
        literal for literal in rule.body if literal.positive and literal.is_predicate()
    ]
    positive_equations = [
        literal for literal in rule.body if literal.positive and literal.is_equation()
    ]
    negatives = [literal for literal in rule.body if literal.negative]

    positive_predicates.sort(key=lambda literal: len(literal.variables()))

    bound: set = set()
    for literal in positive_predicates:
        bound.update(literal.variables())

    ordered_equations: list[Literal] = []
    pending = list(positive_equations)
    while pending:
        progressed = False
        for literal in list(pending):
            equation: Equation = literal.atom  # type: ignore[assignment]
            left_bound = equation.lhs.variables() <= bound
            right_bound = equation.rhs.variables() <= bound
            if left_bound or right_bound:
                ordered_equations.append(literal)
                bound.update(equation.variables())
                pending.remove(literal)
                progressed = True
        if not progressed:
            raise UnsafeRuleError(
                f"cannot order the equations of rule {rule}: no side becomes fully bound"
            )

    return positive_predicates + ordered_equations + negatives


# -- bound-aware greedy planning -------------------------------------------------------------------

#: Selectivity factors for the index kind a predicate extension could use,
#: given which of its arguments are determined by the variables bound so far.
_SELECTIVITY_EXACT_ARGUMENT = 0.05
_SELECTIVITY_FIRST_ATOM = 0.25
#: Estimated cost of extending through an equation with one side bound: the
#: bound side is evaluated and matched against the other, which enumerates at
#: most O(path length) splits per valuation — cheap, but not free.
_EQUATION_BINDER_COST = 2.0


def _predicate_cost(
    predicate: Predicate, source_size: int, bound: "set | frozenset"
) -> float:
    """Estimated candidate rows per valuation when extending through *predicate*."""
    if source_size == 0:
        return 0.0
    exact = False
    first_atom = False
    for component in predicate.components:
        if component.variables() <= bound:
            exact = True
            break
        if _first_atom_is_determined(component, bound):
            first_atom = True
    if exact:
        return max(1.0, source_size * _SELECTIVITY_EXACT_ARGUMENT)
    if first_atom:
        return max(1.0, source_size * _SELECTIVITY_FIRST_ATOM)
    return float(source_size)


def _first_atom_is_determined(component: PathExpression, bound: "set | frozenset") -> bool:
    """Would the first or last atom of *component* be ground once *bound* is?"""
    for items in (component.items, component.items[::-1]):
        for item in items:
            if isinstance(item, str):
                return True
            if isinstance(item, (AtomVariable, PathVariable)):
                # A bound path variable may denote ϵ, in which case the *next*
                # item determines the atom — still a usable prefix (or suffix)
                # at plan time, so treat any bound variable as determining it.
                if item in bound:
                    return True
                break
            break  # a packed value can never match a ground atom
    return False


def plan_literal_sequence(
    order: Sequence[Literal],
    instance: Instance,
    frontier: "dict[int, Instance] | None" = None,
    *,
    bound: "Iterable | None" = None,
) -> list[int]:
    """Greedily permute the positions of *order* by bound-variable coverage and cost.

    Returns a permutation of ``range(len(order))``.  At every step, literals
    whose variables are all bound act as free filters and are scheduled
    immediately (this moves negations and ground equations as early as safety
    allows); otherwise the cheapest extension is chosen among the positive
    predicates — costed by the live cardinality of their relation (the delta
    instance for frontier-restricted positions) discounted by the best index
    the bound variables enable — and the equations with one bound side.

    *bound* names variables that are already bound before the body runs
    (head-bound rederivation probes seed the join with partial valuations);
    the plan then schedules the literals those bindings make selective first.
    """
    remaining = set(range(len(order)))
    sequence: list[int] = []
    bound = set(bound) if bound is not None else set()

    variables = [literal.variables() for literal in order]

    def source_size(position: int) -> int:
        source = instance
        if frontier is not None and position in frontier:
            source = frontier[position]
        predicate: Predicate = order[position].atom  # type: ignore[assignment]
        storage = source.storage(predicate.name)
        return len(storage) if storage is not None else 0

    while remaining:
        # 1. Free filters: every variable already bound.
        filters = sorted(
            position for position in remaining if variables[position] <= bound
        )
        if filters:
            for position in filters:
                sequence.append(position)
                remaining.discard(position)
            continue

        # 2. Cheapest extension among predicates and one-side-bound equations.
        best_position = -1
        best_key: "tuple[float, int, int] | None" = None
        for position in sorted(remaining):
            literal = order[position]
            if literal.positive and literal.is_predicate():
                cost = _predicate_cost(literal.atom, source_size(position), bound)  # type: ignore[arg-type]
            elif literal.positive and literal.is_equation():
                equation: Equation = literal.atom  # type: ignore[assignment]
                if not (
                    equation.lhs.variables() <= bound or equation.rhs.variables() <= bound
                ):
                    continue
                cost = _EQUATION_BINDER_COST
            else:
                continue  # negations never bind; they wait until fully bound
            new_variables = len(variables[position] - bound)
            key = (cost, new_variables, position)
            if best_key is None or key < best_key:
                best_key = key
                best_position = position
        if best_position >= 0:
            sequence.append(best_position)
            remaining.discard(best_position)
            bound.update(variables[best_position])
            continue

        # 3. Stuck: equations with no bound side are unsafe; negations with
        # unbound variables are appended so evaluation reports the same
        # runtime error the static order would.
        if any(order[position].positive for position in remaining):
            rule_text = ", ".join(str(order[position]) for position in sorted(remaining))
            raise UnsafeRuleError(
                f"cannot order the equations of the body [{rule_text}]: "
                f"no side becomes fully bound"
            )
        sequence.extend(sorted(remaining))
        remaining.clear()

    return sequence


# -- candidate row pruning -------------------------------------------------------------------------


def _required_end_atom(
    component: PathExpression, valuation: Valuation, end: int
) -> "str | None":
    """The atom every matching path must start (``end=0``) or finish (``end=-1``)
    with, if determined by *valuation*."""
    items = component.items if end == 0 else component.items[::-1]
    for item in items:
        if isinstance(item, str):
            return item
        if isinstance(item, AtomVariable):
            value = valuation.get(item)
            return value if isinstance(value, str) else None
        if isinstance(item, PathVariable):
            binding = valuation.get(item)
            if binding is None:
                return None
            elements = binding.elements  # type: ignore[union-attr]
            if not elements:
                continue  # bound to ϵ: the adjacent item determines the atom
            value = elements[end]
            return value if isinstance(value, str) else None
        return None  # packed sub-expression: no ground end atom
    return None


def _required_length(component: PathExpression, valuation: Valuation) -> "int | None":
    """The exact length every matching path must have, if fixed under *valuation*."""
    total = 0
    for item in component.items:
        if isinstance(item, PathVariable):
            binding = valuation.get(item)
            if binding is None:
                return None
            total += len(binding.elements)  # type: ignore[union-attr]
        else:
            total += 1  # constants, atomic variables, and packed items are width one
    return total


def _candidate_rows(predicate: Predicate, storage, valuation: Valuation):
    """A superset of the rows that can match *predicate* under *valuation*.

    Chooses the most selective applicable index: exact tuple membership when
    every argument is bound, otherwise the smallest among the exact-path,
    first-atom, and length buckets of any argument, falling back to the full
    row set.  Soundness only needs the superset property — the associative
    matcher remains the final arbiter.
    """
    components = predicate.components
    if not components:
        return storage.view()

    domain = valuation.domain
    targets: list = []
    all_bound = True
    for component in components:
        if component.variables() <= domain:
            targets.append(valuation.apply_to_expression(component))
        else:
            targets.append(None)
            all_bound = False

    if all_bound:
        row = tuple(targets)
        return (row,) if row in storage else EMPTY_ROWS

    best = storage.view()
    best_size = len(best)
    for position, (component, target) in enumerate(zip(components, targets)):
        if best_size <= 1:
            return best  # no further index can prune a singleton bucket
        if target is not None:
            rows = storage.rows_with_path(position, target)
            if len(rows) < best_size:
                best, best_size = rows, len(rows)
            continue
        for end in (0, -1):
            atom = _required_end_atom(component, valuation, end)
            if atom is not None:
                if end == 0:
                    rows = storage.rows_with_first_atom(position, atom)
                else:
                    rows = storage.rows_with_last_atom(position, atom)
                if len(rows) < best_size:
                    best, best_size = rows, len(rows)
        length = _required_length(component, valuation)
        if length is not None:
            rows = storage.rows_with_length(position, length)
            if len(rows) < best_size:
                best, best_size = rows, len(rows)
    return best


# -- extension steps -------------------------------------------------------------------------------


def _extend_with_predicate(
    valuations: Iterable[Valuation],
    predicate: Predicate,
    instance: Instance,
    limits: EvaluationLimits,
    execution: ExecutionMode,
    statistics,
) -> Iterator[Valuation]:
    storage = instance.storage(predicate.name)
    if storage is None or not storage:
        return
    if storage.arity() != predicate.arity:
        # No row of a homogeneous relation can match a predicate of another
        # arity; the scan mode would discover this one failed match at a time.
        return
    components = predicate.components
    indexed = execution != "scan"
    count = 0
    for valuation in valuations:
        if indexed:
            candidates = _candidate_rows(predicate, storage, valuation)
        else:
            # The cached frozen view, not the live set: like the seed, lazy
            # consumers may add derived facts while the generator is running.
            candidates = storage.view()
        if statistics is not None:
            statistics.extension_attempts += len(candidates)
        for row in candidates:
            for extended in match_components(components, row, valuation):
                count += 1
                limits.check_derivations(count)
                yield extended


def _extend_with_equation(
    valuations: Iterable[Valuation],
    equation: Equation,
    limits: EvaluationLimits,
) -> Iterator[Valuation]:
    count = 0
    for valuation in valuations:
        left_ready = valuation.can_evaluate(equation.lhs)
        right_ready = valuation.can_evaluate(equation.rhs)
        if left_ready and right_ready:
            if valuation.apply_to_expression(equation.lhs) == valuation.apply_to_expression(
                equation.rhs
            ):
                count += 1
                limits.check_derivations(count)
                yield valuation
            continue
        if left_ready:
            target = valuation.apply_to_expression(equation.lhs)
            other = equation.rhs
        elif right_ready:
            target = valuation.apply_to_expression(equation.rhs)
            other = equation.lhs
        else:
            raise EvaluationError(
                f"equation {equation} reached with neither side bound; the rule is unsafe"
            )
        for extended in match_expression(other, target, valuation):
            count += 1
            limits.check_derivations(count)
            yield extended


def _filter_negative(
    valuations: Iterable[Valuation],
    literal: Literal,
    instance: Instance,
) -> Iterator[Valuation]:
    """Keep only the valuations under which the negated literal is satisfied."""
    for valuation in valuations:
        if _check_negative(literal, valuation, instance):
            yield valuation


def _check_negative(literal: Literal, valuation: Valuation, instance: Instance) -> bool:
    atom = literal.atom
    if isinstance(atom, Predicate):
        fact = valuation.apply_to_predicate(atom)
        return fact not in instance
    if isinstance(atom, Equation):
        lhs = valuation.apply_to_expression(atom.lhs)
        rhs = valuation.apply_to_expression(atom.rhs)
        return lhs != rhs
    raise EvaluationError(f"unexpected negated atom {atom!r}")  # pragma: no cover


def satisfying_valuations(
    rule: Rule,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    order: Sequence[Literal] | None = None,
    frontier: "dict[int, Instance] | None" = None,
    execution: ExecutionMode = "indexed",
    sequence: "Sequence[int] | None" = None,
    statistics=None,
    initial_valuations: "Iterable[Valuation] | None" = None,
    negative_sources: "dict[int, Instance] | None" = None,
) -> Iterator[Valuation]:
    """Yield the valuations (restricted to the rule's variables) satisfying the body.

    When *frontier* is given it maps positions in *order* to an alternative
    instance to use for the positive predicate at that position; this is how
    the semi-naive strategy restricts one body atom to the newly derived facts.
    Frontier positions always refer to the static order, regardless of the
    execution mode's actual evaluation sequence.

    *negative_sources* is the same position-indexed override for *negated*
    predicate literals: the membership check at an overridden position runs
    against the supplied instance instead of *instance*.  Signed counting
    maintenance uses this to evaluate negations against the pre-update
    overlay of a changed negated relation (the telescoped joins read "old"
    state at positions after their pivot).

    A precomputed *sequence* (a permutation of the order's positions, e.g. a
    cached plan from :class:`RuleEvaluator`) skips the per-call greedy
    planning of the indexed mode.

    *initial_valuations* seeds the join with partial valuations instead of
    the empty one — rederivation during delete–rederive maintenance uses
    this to ask "does this *particular* head fact still have a derivation?"
    with the head variables pre-bound, turning the body evaluation into an
    index-backed membership probe.
    """
    plan = list(order) if order is not None else plan_body_order(rule)
    if sequence is not None:
        pass  # a compiled plan: trust the caller's permutation
    elif execution in ("indexed", "compiled"):
        # The valuation-level interpreter (used by compiled mode for rules
        # outside the simple id-space fragment, and for derivation streams)
        # plans exactly like indexed mode.
        sequence = plan_literal_sequence(plan, instance, frontier)
    elif execution == "scan":
        sequence = range(len(plan))
    else:
        raise EvaluationError(f"unknown execution mode {execution!r}")
    valuations: Iterable[Valuation]
    if initial_valuations is None:
        valuations = (Valuation.EMPTY,)
    else:
        valuations = initial_valuations

    for position in sequence:
        literal = plan[position]
        if literal.positive and literal.is_predicate():
            source = instance
            if frontier is not None and position in frontier:
                source = frontier[position]
            valuations = _extend_with_predicate(
                valuations, literal.atom, source, limits, execution, statistics  # type: ignore[arg-type]
            )
        elif literal.positive and literal.is_equation():
            valuations = _extend_with_equation(valuations, literal.atom, limits)  # type: ignore[arg-type]
        else:
            # Negative literals filter the stream of candidate valuations.
            source = instance
            if negative_sources is not None and position in negative_sources:
                source = negative_sources[position]
            valuations = _filter_negative(valuations, literal, source)

    yield from valuations


def evaluate_rule(
    rule: Rule,
    instance: Instance,
    limits: EvaluationLimits = DEFAULT_LIMITS,
    *,
    frontier: "dict[int, Instance] | None" = None,
    order: Sequence[Literal] | None = None,
    execution: ExecutionMode = "indexed",
    sequence: "Sequence[int] | None" = None,
    statistics=None,
) -> set[Fact]:
    """Return the head facts derivable from *instance* by a single application of *rule*."""
    derived: set[Fact] = set()
    for valuation in satisfying_valuations(
        rule,
        instance,
        limits,
        order=order,
        frontier=frontier,
        execution=execution,
        sequence=sequence,
        statistics=statistics,
    ):
        fact = valuation.apply_to_predicate(rule.head)
        for path in fact.paths:
            limits.check_path_length(len(path))
        derived.add(fact)
    return derived


class RuleEvaluator:
    """Pre-plans a rule's join order and evaluates it repeatedly.

    Fixpoint computation evaluates the same rules many times; the static body
    order (the frontier position space) is planned once per rule, and the
    indexed execution mode's greedy evaluation sequence is *compiled*: cached
    per delta position (the frontier key) and reused until the cardinality
    regime of the relations involved changes.  The planner's choices depend
    only on the relative sizes of the source relations, so a plan stays good
    while every source remains in the same power-of-two size bucket; crossing
    a bucket boundary invalidates the cached plan and triggers a replan.
    """

    def __init__(
        self,
        rule: Rule,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        *,
        execution: ExecutionMode = "indexed",
    ):
        self.rule = rule
        self.limits = limits
        self.execution: ExecutionMode = execution
        self.order = plan_body_order(rule)
        #: The id-space plan (compiled mode only); ``None`` when the rule
        #: falls outside the simple fragment and stays interpreted.
        self.compiled_plan = None
        if execution == "compiled":
            self.compiled_plan = compile_rule(rule.head, self.order)
        #: Positions (in the planned order) of positive body predicates, by relation name.
        self.predicate_positions: dict[str, list[int]] = {}
        for position, literal in enumerate(self.order):
            if literal.positive and literal.is_predicate():
                name = literal.atom.name  # type: ignore[union-attr]
                self.predicate_positions.setdefault(name, []).append(position)
        #: All positive-predicate ``(position, relation name)`` pairs in static
        #: order — the position space delta frontiers and the telescoped
        #: maintenance joins index into.
        self.positions_in_order: tuple[tuple[int, str], ...] = tuple(
            (position, literal.atom.name)  # type: ignore[union-attr]
            for position, literal in enumerate(self.order)
            if literal.positive and literal.is_predicate()
        )
        #: Relation names the body's positive predicates read from.
        self.body_relation_names = frozenset(self.predicate_positions)
        #: Relation names the body reads under negation (maintenance refuses
        #: to propagate deltas through these).
        negated: set[str] = set()
        for literal in self.order:
            if literal.negative and literal.is_predicate():
                negated.add(literal.atom.name)  # type: ignore[union-attr]
        self.negated_relation_names = frozenset(negated)
        #: All positive-predicate positions, for the cardinality signature.
        self._predicate_order_positions = tuple(
            position
            for positions in self.predicate_positions.values()
            for position in sorted(positions)
        )
        #: frontier key → (cardinality signature, compiled evaluation sequence).
        self._plans: dict[tuple[int, ...], tuple[tuple[int, ...], tuple[int, ...]]] = {}

    def _cardinality_signature(
        self, instance: Instance, frontier: "dict[int, Instance] | None"
    ) -> tuple[int, ...]:
        """Power-of-two size buckets of every body predicate's source relation."""
        signature = []
        for position in self._predicate_order_positions:
            source = instance
            if frontier is not None and position in frontier:
                source = frontier[position]
            storage = source.storage(self.order[position].atom.name)  # type: ignore[union-attr]
            size = len(storage) if storage is not None else 0
            signature.append(size.bit_length())
        return tuple(signature)

    def compiled_sequence(
        self,
        instance: Instance,
        frontier: "dict[int, Instance] | None" = None,
        statistics=None,
    ) -> tuple[int, ...]:
        """The (cached) indexed-mode evaluation sequence for this call shape."""
        key = tuple(sorted(frontier)) if frontier else ()
        signature = self._cardinality_signature(instance, frontier)
        cached = self._plans.get(key)
        if cached is not None and cached[0] == signature:
            if statistics is not None:
                statistics.plan_cache_hits += 1
            return cached[1]
        sequence = tuple(plan_literal_sequence(self.order, instance, frontier))
        self._plans[key] = (signature, sequence)
        if statistics is not None:
            statistics.plans_compiled += 1
        return sequence

    def derivations(
        self,
        instance: Instance,
        frontier: "dict[int, Instance] | None" = None,
        statistics=None,
        *,
        initial_valuations: "Iterable[Valuation] | None" = None,
        negative_sources: "dict[int, Instance] | None" = None,
    ) -> "Iterator[tuple[Fact, Valuation]]":
        """Yield every ``(head fact, satisfying valuation)`` derivation.

        Unlike :meth:`derive` this does not collapse derivations into a fact
        set: counting-based maintenance needs each distinct body valuation as
        one unit of support for its head fact.  *initial_valuations* seeds
        the join with pre-bound valuations (see
        :func:`satisfying_valuations`); the join is then planned per call
        around those bindings — the compiled cache only knows unbound starts,
        and a head-bound probe that ignored its bindings would degenerate
        into a scan of the first body relation.
        """
        sequence = None
        if self.execution in ("indexed", "compiled"):
            if initial_valuations is None:
                sequence = self.compiled_sequence(instance, frontier, statistics)
            else:
                initial_valuations = tuple(initial_valuations)
                seed_domain: set = set()
                for valuation in initial_valuations:
                    seed_domain |= valuation.domain
                sequence = plan_literal_sequence(
                    self.order, instance, frontier, bound=seed_domain
                )
                if statistics is not None:
                    statistics.plans_compiled += 1
        for valuation in satisfying_valuations(
            self.rule,
            instance,
            self.limits,
            order=self.order,
            frontier=frontier,
            execution=self.execution,
            sequence=sequence,
            statistics=statistics,
            initial_valuations=initial_valuations,
            negative_sources=negative_sources,
        ):
            fact = valuation.apply_to_predicate(self.rule.head)
            for path in fact.paths:
                self.limits.check_path_length(len(path))
            yield fact, valuation

    def derive(
        self,
        instance: Instance,
        frontier: "dict[int, Instance] | None" = None,
        statistics=None,
        *,
        negative_sources: "dict[int, Instance] | None" = None,
    ) -> set[Fact]:
        """Evaluate the rule once against *instance* (optionally delta-restricted).

        In compiled mode, rules in the simple fragment run their id-space
        plan (:class:`~repro.engine.compiled.CompiledRule`); the rest — and
        every :meth:`derivations` stream, which needs per-valuation support —
        take the interpreted path, so answers are identical across modes.
        A *negative_sources* override always interprets: the compiled plan's
        negation membership tests are baked against the live instance.
        """
        if self.compiled_plan is not None and negative_sources is None:
            return self.compiled_plan.derive(instance, frontier, self.limits, statistics)
        return {
            fact
            for fact, _ in self.derivations(
                instance, frontier, statistics, negative_sources=negative_sources
            )
        }
