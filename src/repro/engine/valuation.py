"""Valuations: ground assignments of variables (Section 2.3).

A valuation maps atomic variables to atomic values and path variables to
paths.  A valuation is *appropriate* for a syntactic construct if it is
defined on all of its variables; applying an appropriate valuation to a path
expression yields a path, and applying it to a predicate yields a fact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import EvaluationError
from repro.model.instance import Fact
from repro.model.terms import Packed, Path, is_atomic_value
from repro.syntax.expressions import (
    AtomVariable,
    PackedExpression,
    PathExpression,
    PathVariable,
    Variable,
)
from repro.syntax.literals import Predicate

__all__ = ["Valuation"]


def _coerce_binding(variable: Variable, value: object) -> "str | Path":
    if isinstance(variable, AtomVariable):
        if isinstance(value, Path) and value.is_atomic():
            return value.elements[0]  # type: ignore[return-value]
        if is_atomic_value(value):
            return value  # type: ignore[return-value]
        raise EvaluationError(
            f"atomic variable {variable} can only be bound to an atomic value, got {value!r}"
        )
    if isinstance(value, Path):
        return value
    if is_atomic_value(value) or isinstance(value, Packed):
        return Path((value,))
    raise EvaluationError(f"path variable {variable} can only be bound to a path, got {value!r}")


class Valuation(Mapping[Variable, object]):
    """An immutable assignment of variables to atomic values / paths."""

    __slots__ = ("_bindings", "_hash")

    def __init__(self, bindings: "Mapping[Variable, object] | Iterable[tuple[Variable, object]]" = ()):
        entries = dict(bindings)
        self._bindings: dict[Variable, object] = {
            variable: _coerce_binding(variable, value) for variable, value in entries.items()
        }
        self._hash = hash(frozenset(self._bindings.items()))

    #: The empty valuation.
    EMPTY: "Valuation"

    # -- mapping protocol ---------------------------------------------------------------

    def __getitem__(self, variable: Variable) -> object:
        return self._bindings[variable]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, variable: object) -> bool:
        return variable in self._bindings

    @property
    def domain(self) -> frozenset[Variable]:
        """The variables this valuation is defined on."""
        return frozenset(self._bindings)

    def is_appropriate_for(self, variables: Iterable[Variable]) -> bool:
        """Return ``True`` if all *variables* are in the domain."""
        return set(variables) <= set(self._bindings)

    # -- extension ------------------------------------------------------------------------

    def bind(self, variable: Variable, value: object) -> "Valuation":
        """Return an extension binding *variable* to *value*.

        Raises :class:`EvaluationError` if the variable is already bound to a
        different value.
        """
        coerced = _coerce_binding(variable, value)
        existing = self._bindings.get(variable)
        if existing is not None:
            if existing != coerced:
                raise EvaluationError(
                    f"variable {variable} is already bound to {existing}, cannot rebind to {coerced}"
                )
            return self
        extended = dict(self._bindings)
        extended[variable] = coerced
        return Valuation(extended)

    def merge(self, other: "Valuation") -> "Valuation | None":
        """Return the union of two valuations, or ``None`` if they conflict."""
        merged = dict(self._bindings)
        for variable, value in other._bindings.items():
            existing = merged.get(variable)
            if existing is None:
                merged[variable] = value
            elif existing != value:
                return None
        return Valuation(merged)

    def restricted(self, variables: Iterable[Variable]) -> "Valuation":
        """Return the restriction of the valuation to *variables*."""
        wanted = set(variables)
        return Valuation({v: value for v, value in self._bindings.items() if v in wanted})

    # -- application ------------------------------------------------------------------------

    def path_of(self, variable: Variable) -> Path:
        """Return the binding of *variable*, as a path."""
        value = self._bindings.get(variable)
        if value is None:
            raise EvaluationError(f"valuation is not defined on {variable}")
        if isinstance(value, Path):
            return value
        return Path((value,))  # atomic value, identified with a length-one path

    def apply_to_expression(self, expression: PathExpression) -> Path:
        """Evaluate a path expression under this valuation (must be appropriate)."""
        values: list[object] = []
        for item in expression.items:
            if isinstance(item, str):
                values.append(item)
            elif isinstance(item, AtomVariable):
                binding = self._bindings.get(item)
                if binding is None:
                    raise EvaluationError(f"valuation is not defined on {item}")
                values.append(binding)
            elif isinstance(item, PathVariable):
                binding = self._bindings.get(item)
                if binding is None:
                    raise EvaluationError(f"valuation is not defined on {item}")
                values.extend(binding.elements)  # type: ignore[union-attr]
            elif isinstance(item, PackedExpression):
                values.append(Packed(self.apply_to_expression(item.inner)))
        return Path(values)

    def apply_to_predicate(self, predicate: Predicate) -> Fact:
        """Evaluate a predicate to a fact under this valuation."""
        return Fact(
            predicate.name,
            tuple(self.apply_to_expression(component) for component in predicate.components),
        )

    def can_evaluate(self, expression: PathExpression) -> bool:
        """Return ``True`` if all variables of *expression* are bound."""
        return expression.variables() <= self.domain

    # -- equality and rendering --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Valuation) and self._bindings == other._bindings

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{variable} ↦ {value}"
            for variable, value in sorted(
                self._bindings.items(), key=lambda pair: (pair[0].prefix, pair[0].name)
            )
        )
        return f"Valuation({{{inner}}})"


Valuation.EMPTY = Valuation()
