"""Queries: the baseline class of flat unary queries (Section 3.1).

A *query* from a monadic schema ``Γ`` to an output relation ``S ∉ Γ`` of
arity at most one is a total mapping from flat instances over ``Γ`` to flat
instances over ``{S}``.  A program *computes* such a query when it is over
``Γ``, terminates on every flat instance, has ``S`` among its IDB relations,
and produces exactly the query's answer in ``S``.

:class:`ProgramQuery` packages a program with its input schema and output
relation and offers convenient evaluation entry points.  It is the unit the
fragment-expressiveness machinery (Section 3) reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.engine.evaluation import ExecutionMode
from repro.engine.fixpoint import EvaluationStatistics, Strategy, evaluate_program
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import EvaluationError, ModelError
from repro.model.instance import Instance
from repro.model.schema import Schema
from repro.model.terms import Path
from repro.syntax.programs import Program

__all__ = ["ProgramQuery", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """The result of running a :class:`ProgramQuery` on an instance."""

    output: Instance
    full_instance: Instance
    statistics: EvaluationStatistics

    def paths(self, relation: str | None = None) -> frozenset[Path]:
        """The set of output paths (for a unary output relation)."""
        names = list(self.output.relation_names)
        name = relation if relation is not None else (names[0] if names else None)
        if name is None:
            return frozenset()
        return self.output.paths(name)

    def boolean(self) -> bool:
        """For a nullary output relation: whether the empty tuple was derived."""
        return bool(self.output)


class ProgramQuery:
    """A Sequence Datalog program viewed as a query from a schema to one relation."""

    def __init__(
        self,
        program: Program,
        input_schema: "Schema | dict[str, int]",
        output_relation: str,
        *,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        strategy: Strategy = "seminaive",
        execution: ExecutionMode = "indexed",
        name: str | None = None,
        require_monadic: bool = True,
    ):
        self.program = program
        self.input_schema = input_schema if isinstance(input_schema, Schema) else Schema(input_schema)
        self.output_relation = output_relation
        self.limits = limits
        self.strategy: Strategy = strategy
        self.execution: ExecutionMode = execution
        self.name = name or output_relation
        self._validate(require_monadic)

    def _validate(self, require_monadic: bool) -> None:
        if require_monadic and not self.input_schema.is_monadic():
            raise EvaluationError(
                f"the baseline queries of Section 3.1 use monadic input schemas; "
                f"got {self.input_schema!r} (pass require_monadic=False to override)"
            )
        if not self.program.is_over(self.input_schema):
            raise EvaluationError(
                f"the program is not over the input schema {self.input_schema!r}: "
                f"EDB = {sorted(self.program.edb_relation_names())}, "
                f"IDB = {sorted(self.program.idb_relation_names())}"
            )
        if self.output_relation not in self.program.idb_relation_names():
            raise EvaluationError(
                f"output relation {self.output_relation!r} is not an IDB relation of the program"
            )
        if self.output_relation in self.input_schema:
            raise EvaluationError(
                f"output relation {self.output_relation!r} must not belong to the input schema"
            )
        arity = self.program.relation_arities().get(self.output_relation, 1)
        if require_monadic and arity > 1:
            raise EvaluationError(
                f"output relation {self.output_relation!r} has arity {arity}; "
                f"queries return relations of arity at most one"
            )

    # -- evaluation -------------------------------------------------------------------------------

    def run(self, instance: Instance, *, check_flat: bool = True) -> QueryResult:
        """Run the query on *instance* and return the full :class:`QueryResult`."""
        if check_flat and not instance.is_flat():
            raise ModelError("queries are defined on flat instances (no packed values)")
        unknown = instance.relation_names - self.input_schema.relation_names
        if unknown:
            raise EvaluationError(
                f"instance uses relations {sorted(unknown)} outside the input schema"
            )
        statistics = EvaluationStatistics()
        full = evaluate_program(
            self.program,
            instance,
            self.limits,
            strategy=self.strategy,
            execution=self.execution,
            statistics=statistics,
        )
        output = full.restricted([self.output_relation])
        output.ensure_relation(self.output_relation)
        return QueryResult(output=output, full_instance=full, statistics=statistics)

    def answer(self, instance: Instance) -> frozenset[Path]:
        """Run the query and return the set of output paths (unary output)."""
        return self.run(instance).paths(self.output_relation)

    def boolean(self, instance: Instance) -> bool:
        """Run the query and interpret the (nullary) output relation as a boolean."""
        return self.run(instance).boolean()

    def answers_on(self, instances: Iterable[Instance]) -> list[frozenset[Path]]:
        """Run the query on several instances."""
        return [self.answer(instance) for instance in instances]

    # -- introspection ----------------------------------------------------------------------------

    def features(self):
        """Return the set of features used by the underlying program (Section 3)."""
        from repro.fragments.features import program_features

        return program_features(self.program)

    def __repr__(self) -> str:
        return (
            f"ProgramQuery(name={self.name!r}, output={self.output_relation!r}, "
            f"schema={self.input_schema!r})"
        )
