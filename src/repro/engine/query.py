"""Queries: the baseline class of flat unary queries (Section 3.1).

A *query* from a monadic schema ``Γ`` to an output relation ``S ∉ Γ`` of
arity at most one is a total mapping from flat instances over ``Γ`` to flat
instances over ``{S}``.  A program *computes* such a query when it is over
``Γ``, terminates on every flat instance, has ``S`` among its IDB relations,
and produces exactly the query's answer in ``S``.

:class:`ProgramQuery` packages a program with its input schema and output
relation and offers convenient evaluation entry points.  It is the unit the
fragment-expressiveness machinery (Section 3) reasons about.

Two evaluation modes are supported:

* ``mode="full"`` — the semantics-defining baseline: materialise the whole
  program fixpoint, then restrict to the output relation (filtered by the
  query *binding*, if one is given);
* ``mode="goal"`` — goal-directed: the binding induces an adornment of the
  output relation, the program is magic-set rewritten
  (:func:`repro.transform.magic.magic_rewrite`), and the rewritten program is
  evaluated with the binding seeded into the magic relation, deriving only
  the facts the query actually demands.  When the rewriting is unsupported
  (negation on demanded relations, expanding magic recursion) or the
  goal-directed run exceeds the evaluation limits, the query transparently
  falls back to full evaluation and records the reason on the result.

Both modes return identical answers by construction; the goal mode merely
avoids work (`benchmarks/bench_magic_sets.py` measures how much).

:class:`QuerySession` pins an instance and reuses the compiled artifacts —
magic rewritings per adornment and rule evaluators with their compiled join
plans — across repeated queries, which is the intended entry point for
query-heavy serving workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping
from typing import Literal as TypingLiteral

from repro.engine.evaluation import ExecutionMode
from repro.engine.fixpoint import (
    EvaluationStatistics,
    ProgramEvaluators,
    Strategy,
    evaluate_program,
)
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import (
    EvaluationBudgetExceeded,
    EvaluationError,
    MagicSetUnsupportedError,
    ModelError,
)
from repro.model.instance import Fact, Instance
from repro.model.schema import Schema
from repro.model.terms import Path, as_path
from repro.syntax.programs import Program

__all__ = ["ProgramQuery", "QueryResult", "QuerySession", "QueryMode"]

QueryMode = TypingLiteral["full", "goal"]

#: A query binding: concrete paths for some output argument positions.
Binding = dict[int, Path]


@dataclass(frozen=True)
class QueryResult:
    """The result of running a :class:`ProgramQuery` on an instance.

    ``mode`` records how the answer was actually computed: ``"goal"`` when
    the magic-set pipeline ran, ``"full"`` otherwise.  When a goal-directed
    run was requested but had to fall back, ``fallback_reason`` says why.
    """

    output: Instance
    full_instance: Instance
    statistics: EvaluationStatistics
    output_relation: "str | None" = None
    binding: "Binding | None" = None
    mode: QueryMode = "full"
    fallback_reason: "str | None" = None

    def paths(self, relation: str | None = None) -> frozenset[Path]:
        """The set of output paths (for a unary output relation).

        Defaults to the query's output relation; an explicit *relation* reads
        another one.  Results that do not know their output relation (built
        by hand) fall back to the single present relation, and raise
        :class:`EvaluationError` instead of picking arbitrarily when several
        are present.
        """
        name = relation if relation is not None else self.output_relation
        if name is None:
            names = sorted(self.output.relation_names)
            if len(names) > 1:
                raise EvaluationError(
                    f"result holds several relations {names}; pass relation=... "
                    f"to disambiguate"
                )
            name = names[0] if names else None
        if name is None:
            return frozenset()
        return self.output.paths(name)

    def boolean(self) -> bool:
        """For a nullary output relation: whether the empty tuple was derived."""
        return bool(self.output)


def _normalise_binding(
    binding: "Mapping[int, object] | None", arity: int, relation: str
) -> Binding:
    """Coerce binding values to paths and validate the positions."""
    if not binding:
        return {}
    normalised: Binding = {}
    for position, value in binding.items():
        if not isinstance(position, int) or not 0 <= position < arity:
            raise EvaluationError(
                f"binding position {position!r} is outside the argument range of "
                f"{relation!r} (arity {arity})"
            )
        normalised[position] = as_path(value)
    return normalised


def _restrict_output(full: Instance, relation: str, binding: Binding) -> Instance:
    """The output sub-instance: the relation's rows that match the binding.

    Bound positions are looked up through the storage layer's exact-argument
    index (the smallest bucket), so a selective binding never scans the whole
    output relation.
    """
    if not binding:
        output = full.restricted([relation])
        output.ensure_relation(relation)
        return output
    output = Instance()
    output.ensure_relation(relation)
    storage = full.storage(relation)
    if storage is None or not storage:
        return output
    rows = min(
        (storage.rows_with_path(position, value) for position, value in binding.items()),
        key=len,
    )
    for row in rows:
        if all(row[position] == value for position, value in binding.items()):
            output.add_fact(Fact(relation, row))
    return output


class ProgramQuery:
    """A Sequence Datalog program viewed as a query from a schema to one relation."""

    def __init__(
        self,
        program: Program,
        input_schema: "Schema | dict[str, int]",
        output_relation: str,
        *,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        strategy: Strategy = "seminaive",
        execution: ExecutionMode = "indexed",
        mode: QueryMode = "full",
        name: str | None = None,
        require_monadic: bool = True,
    ):
        self.program = program
        self.input_schema = input_schema if isinstance(input_schema, Schema) else Schema(input_schema)
        self.output_relation = output_relation
        self.limits = limits
        self.strategy: Strategy = strategy
        self.execution: ExecutionMode = execution
        if mode not in ("full", "goal"):
            raise EvaluationError(f"unknown query mode {mode!r}; use 'full' or 'goal'")
        self.mode: QueryMode = mode
        self.name = name or output_relation
        self._validate(require_monadic)
        self.output_arity: int = self.program.relation_arities()[output_relation]
        #: Per-adornment magic rewritings (or the reason they are unavailable),
        #: keyed by the tuple of bound positions.  Shared by every session.
        self._goal_programs: dict[tuple[int, ...], "object"] = {}

    def _validate(self, require_monadic: bool) -> None:
        if require_monadic and not self.input_schema.is_monadic():
            raise EvaluationError(
                f"the baseline queries of Section 3.1 use monadic input schemas; "
                f"got {self.input_schema!r} (pass require_monadic=False to override)"
            )
        if not self.program.is_over(self.input_schema):
            raise EvaluationError(
                f"the program is not over the input schema {self.input_schema!r}: "
                f"EDB = {sorted(self.program.edb_relation_names())}, "
                f"IDB = {sorted(self.program.idb_relation_names())}"
            )
        if self.output_relation not in self.program.idb_relation_names():
            raise EvaluationError(
                f"output relation {self.output_relation!r} is not an IDB relation of the program"
            )
        if self.output_relation in self.input_schema:
            raise EvaluationError(
                f"output relation {self.output_relation!r} must not belong to the input schema"
            )
        arity = self.program.relation_arities().get(self.output_relation, 1)
        if require_monadic and arity > 1:
            raise EvaluationError(
                f"output relation {self.output_relation!r} has arity {arity}; "
                f"queries return relations of arity at most one"
            )

    # -- goal compilation -------------------------------------------------------------------------

    def goal_program(self, binding: "Mapping[int, object] | None" = None):
        """The magic-set rewriting for *binding*'s adornment, or ``None`` + reason.

        Returns ``(MagicProgram | None, reason | None)``; the rewriting is
        computed once per adornment and cached on the query.
        """
        normalised = _normalise_binding(binding, self.output_arity, self.output_relation)
        return self._goal_program_for_key(tuple(sorted(normalised)))

    def _goal_program_for_key(self, key: tuple[int, ...]):
        """As :meth:`goal_program`, keyed by already-validated bound positions."""
        # Imported lazily: repro.transform depends on the engine package.
        from repro.analysis.adornment import Adornment
        from repro.transform.magic import magic_rewrite

        cached = self._goal_programs.get(key)
        if cached is None:
            try:
                cached = magic_rewrite(
                    self.program,
                    self.output_relation,
                    Adornment.from_positions(self.output_arity, key),
                )
            except MagicSetUnsupportedError as error:
                cached = str(error)
            self._goal_programs[key] = cached
        if isinstance(cached, str):
            return None, cached
        return cached, None

    # -- evaluation -------------------------------------------------------------------------------

    def session(self, instance: Instance, *, check_flat: bool = True) -> "QuerySession":
        """Open a :class:`QuerySession` for repeated queries over *instance*."""
        return QuerySession(self, instance, check_flat=check_flat)

    def run(
        self,
        instance: Instance,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
        check_flat: bool = True,
    ) -> QueryResult:
        """Run the query on *instance* and return the full :class:`QueryResult`."""
        return self.session(instance, check_flat=check_flat).run(binding=binding, mode=mode)

    def answer(
        self,
        instance: Instance,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> frozenset[Path]:
        """Run the query and return the set of output paths (unary output)."""
        return self.run(instance, binding=binding, mode=mode).paths(self.output_relation)

    def boolean(
        self,
        instance: Instance,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> bool:
        """Run the query and interpret the (nullary) output relation as a boolean."""
        return self.run(instance, binding=binding, mode=mode).boolean()

    def answers_on(self, instances: Iterable[Instance]) -> list[frozenset[Path]]:
        """Run the query on several instances."""
        return [self.answer(instance) for instance in instances]

    # -- introspection ----------------------------------------------------------------------------

    def features(self):
        """Return the set of features used by the underlying program (Section 3)."""
        from repro.fragments.features import program_features

        return program_features(self.program)

    def __repr__(self) -> str:
        return (
            f"ProgramQuery(name={self.name!r}, output={self.output_relation!r}, "
            f"schema={self.input_schema!r}, mode={self.mode!r})"
        )


class QuerySession:
    """Repeated (possibly goal-directed) queries over one pinned instance.

    The session validates the instance once, then caches the evaluation
    machinery that is worth keeping warm between queries: one
    :class:`ProgramEvaluators` per evaluated program (the full program and
    each magic rewriting), whose rule evaluators hold the compiled join
    plans.  Evaluation itself always works on a copy, so the pinned instance
    is never modified; if the caller mutates it between queries, the compiled
    plans re-validate themselves against the new relation cardinalities.
    """

    def __init__(self, query: ProgramQuery, instance: Instance, *, check_flat: bool = True):
        if check_flat and not instance.is_flat():
            raise ModelError("queries are defined on flat instances (no packed values)")
        unknown = instance.relation_names - query.input_schema.relation_names
        if unknown:
            raise EvaluationError(
                f"instance uses relations {sorted(unknown)} outside the input schema"
            )
        self.query = query
        self.instance = instance
        self._evaluators: dict[int, ProgramEvaluators] = {}

    def _evaluators_for(self, program: Program) -> ProgramEvaluators:
        found = self._evaluators.get(id(program))
        if found is None:
            found = self._evaluators[id(program)] = ProgramEvaluators(
                self.query.limits, execution=self.query.execution
            )
        return found

    def _evaluate(
        self,
        program: Program,
        statistics: EvaluationStatistics,
        seed_facts: "Iterable[Fact] | None" = None,
    ) -> Instance:
        return evaluate_program(
            program,
            self.instance,
            self.query.limits,
            strategy=self.query.strategy,
            execution=self.query.execution,
            statistics=statistics,
            seed_facts=seed_facts,
            evaluators=self._evaluators_for(program),
        )

    def run(
        self,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> QueryResult:
        """Run the query against the session's instance."""
        query = self.query
        wanted_mode: QueryMode = mode if mode is not None else query.mode
        if wanted_mode not in ("full", "goal"):
            raise EvaluationError(f"unknown query mode {wanted_mode!r}; use 'full' or 'goal'")
        normalised = _normalise_binding(binding, query.output_arity, query.output_relation)

        fallback_reason: "str | None" = None
        if wanted_mode == "goal":
            compiled, fallback_reason = query._goal_program_for_key(tuple(sorted(normalised)))
            if compiled is not None:
                statistics = EvaluationStatistics()
                try:
                    full = self._evaluate(
                        compiled.program,
                        statistics,
                        seed_facts=(compiled.seed_fact(normalised),),
                    )
                except EvaluationBudgetExceeded as error:
                    fallback_reason = (
                        f"goal-directed evaluation exceeded the limits ({error}); "
                        f"fell back to full evaluation"
                    )
                else:
                    output = _restrict_output(full, query.output_relation, normalised)
                    return QueryResult(
                        output=output,
                        full_instance=full,
                        statistics=statistics,
                        output_relation=query.output_relation,
                        binding=normalised,
                        mode="goal",
                    )

        statistics = EvaluationStatistics()
        full = self._evaluate(query.program, statistics)
        output = _restrict_output(full, query.output_relation, normalised)
        return QueryResult(
            output=output,
            full_instance=full,
            statistics=statistics,
            output_relation=query.output_relation,
            binding=normalised,
            mode="full",
            fallback_reason=fallback_reason,
        )

    def answer(
        self,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> frozenset[Path]:
        """Run against the pinned instance and return the output paths."""
        return self.run(binding=binding, mode=mode).paths(self.query.output_relation)

    def boolean(
        self,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> bool:
        """Run against the pinned instance and read the nullary output as a boolean."""
        return self.run(binding=binding, mode=mode).boolean()
