"""Queries: the baseline class of flat unary queries (Section 3.1).

A *query* from a monadic schema ``Γ`` to an output relation ``S ∉ Γ`` of
arity at most one is a total mapping from flat instances over ``Γ`` to flat
instances over ``{S}``.  A program *computes* such a query when it is over
``Γ``, terminates on every flat instance, has ``S`` among its IDB relations,
and produces exactly the query's answer in ``S``.

:class:`ProgramQuery` packages a program with its input schema and output
relation and offers convenient evaluation entry points.  It is the unit the
fragment-expressiveness machinery (Section 3) reasons about.

Two evaluation modes are supported:

* ``mode="full"`` — the semantics-defining baseline: materialise the whole
  program fixpoint, then restrict to the output relation (filtered by the
  query *binding*, if one is given);
* ``mode="goal"`` — goal-directed: the binding induces an adornment of the
  output relation, the program is magic-set rewritten
  (:func:`repro.transform.magic.magic_rewrite`), and the rewritten program is
  evaluated with the binding seeded into the magic relation, deriving only
  the facts the query actually demands.  Stratified negation on demanded
  relations is handled by the rewrite itself (the negated relations'
  support rules ride along un-adorned and evaluate fully); when the
  rewriting is unsupported (expanding magic recursion) or the goal-directed
  run exceeds the evaluation limits, the query transparently falls back to
  full evaluation and records the reason on the result.

Both modes return identical answers by construction; the goal mode merely
avoids work (`benchmarks/bench_magic_sets.py` measures how much).

:class:`QuerySession` pins an instance and reuses the compiled artifacts —
magic rewritings per adornment and rule evaluators with their compiled join
plans — across repeated queries, which is the intended entry point for
query-heavy serving workloads.  The session additionally *memoizes the full
fixpoint as a maintained materialization*
(:class:`~repro.engine.maintenance.MaintainedFixpoint`): repeated full-mode
queries — and binding-only changes in goal mode, once a full run happened —
are answered from the materialization without re-evaluating anything
(``QueryResult.served_by == "maintained"``), and :meth:`QuerySession.update`
applies fact-level additions/retractions to both the pinned instance and the
materialization incrementally (counting / delete–rederive, see
:mod:`repro.engine.maintenance`).  Out-of-band mutations of the pinned
instance are absorbed through the storage layer's change logs when possible;
updates maintenance cannot cover fall back to re-evaluation with a recorded
reason, mirroring the goal-mode fallback contract.

Until a full materialization exists, goal-mode answers are *tabled* by call
subsumption (:mod:`repro.engine.tabling`): every evaluated goal's answers
are kept — as their own maintained materialization of the magic program —
in a per-session answer table, a later call whose seed is subsumed by a
tabled entry is served from the table with zero evaluation
(``served_by == "tabled"``), and :meth:`QuerySession.update` maintains the
tabled subgoals incrementally alongside everything else.  Goal adornments
refused as *expanding magic recursion* are no longer a hard fallback to
full evaluation: the rewriting retries with a generalized (more general,
subsuming) adornment, the generalized goal is evaluated and tabled, and the
requested call — plus every later call it subsumes — is answered from that
entry.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Mapping
from typing import Literal as TypingLiteral

from repro.engine.evaluation import ExecutionMode
from repro.engine.fixpoint import (
    EvaluationStatistics,
    ProgramEvaluators,
    Strategy,
    evaluate_program,
)
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.maintenance import MaintainedFixpoint
from repro.engine.reasons import (
    GENERALIZATION_TOO_LARGE,
    GOAL_BUDGET_EXCEEDED,
    REWRITE_UNSUPPORTED,
    SNAPSHOT_UNSUPPORTED,
    maintenance_reason,
    reason,
)
from repro.engine.sharding import (
    ParallelExecutor,
    ProcessExecutor,
    SequentialExecutor,
    ShardedFixpoint,
    goal_shard_footprint,
)
from repro.engine.tabling import DEFAULT_MAX_ENTRIES, AnswerTable, TableEntry
from repro.errors import (
    EvaluationBudgetExceeded,
    EvaluationError,
    MagicSetUnsupportedError,
    MaintenanceUnsupportedError,
    ModelError,
    SnapshotUnsupportedError,
)
from repro.model.instance import Fact, Instance
from repro.model.schema import Schema
from repro.model.terms import Path, as_path
from repro.storage.partition import ShardingPlan, ShardingSpec, choose_sharding_plan
from repro.syntax.programs import Program

__all__ = ["ProgramQuery", "QueryResult", "QuerySession", "QueryMode", "ServedBy", "UpdateResult"]

QueryMode = TypingLiteral["full", "goal"]

#: How a query answer was produced: ``"full"`` — a from-scratch fixpoint was
#: evaluated for this call; ``"maintained"`` — the answer was read off the
#: session's maintained materialization with no (or only incremental)
#: evaluation; ``"goal"`` — the magic-set pipeline derived the demanded slice
#: for this call; ``"tabled"`` — the call was subsumed by a previously
#: evaluated goal and served from the session's subgoal answer table with
#: zero evaluation (:mod:`repro.engine.tabling`); ``"worker"`` — a sharded
#: session routed the goal to the resident worker owning its (singleton)
#: shard footprint, which evaluated it against its partition without any
#: parent-side evaluation or materialization read.
ServedBy = TypingLiteral["full", "maintained", "goal", "tabled", "worker"]

#: A query binding: concrete paths for some output argument positions.
Binding = dict[int, Path]

#: Default ceiling for the generalized-tabling cost model: a generalized
#: rewriting is only tabled when its estimated answer sweep is within this
#: multiple of the requested slice (see
#: :meth:`QuerySession._generalization_guard`).  ``None`` disables the model.
DEFAULT_GENERALIZATION_LIMIT = 256.0

#: Version stamp of :meth:`QuerySession.export_state` documents.  Bumped on
#: any incompatible change to the state layout; :meth:`QuerySession.restore`
#: refuses other versions with
#: :class:`~repro.errors.SnapshotUnsupportedError`.
SESSION_STATE_VERSION = 1


@dataclass(frozen=True)
class QueryResult:
    """The result of running a :class:`ProgramQuery` on an instance.

    ``mode`` records the request's identity — the mode the caller asked for
    and that this result answers: a goal-mode request keeps
    ``mode == "goal"`` even when its answer happened to be read off a warm
    full materialization.  ``served_by`` records how the answer was actually
    produced: ``"goal"`` when the magic-set pipeline evaluated for this
    call, ``"tabled"`` when a subsumed tabled goal served it, ``"maintained"``
    when a session's materialization did, and ``"full"`` when a from-scratch
    fixpoint ran.  ``fallback_reason`` is set when a goal-mode request could
    not (or, served from a warm materialization, *would not cold*) run the
    magic pipeline — it records the compile-time refusal or the runtime
    budget breach that forces full evaluation.
    """

    output: Instance
    full_instance: Instance
    statistics: EvaluationStatistics
    output_relation: "str | None" = None
    binding: "Binding | None" = None
    mode: QueryMode = "full"
    fallback_reason: "str | None" = None
    served_by: ServedBy = "full"

    def paths(self, relation: str | None = None) -> frozenset[Path]:
        """The set of output paths (for a unary output relation).

        Defaults to the query's output relation; an explicit *relation* reads
        another one.  Results that do not know their output relation (built
        by hand) fall back to the single present relation, and raise
        :class:`EvaluationError` — naming every candidate — instead of
        picking arbitrarily when several are present.
        """
        name = relation if relation is not None else self.output_relation
        if name is None:
            names = sorted(self.output.relation_names)
            if len(names) > 1:
                candidates = ", ".join(repr(candidate) for candidate in names)
                raise EvaluationError(
                    f"result holds several relations and does not know which one is "
                    f"the output; pass relation=... to disambiguate between the "
                    f"candidates {candidates}"
                )
            name = names[0] if names else None
        if name is None:
            return frozenset()
        return self.output.paths(name)

    def boolean(self) -> bool:
        """For a nullary output relation: whether the empty tuple was derived."""
        return bool(self.output)


def _mentions(path: Path, value: Path) -> bool:
    """Whether *path* equals *value* or contains it as a contiguous run.

    The touch predicate of the generalized-tabling cost model: a base row
    can only feed the requested slice through an access that equates an
    argument with a bound value or destructures it around one, and both
    shapes require the value's elements to appear contiguously in the row.
    """
    if path == value:
        return True
    elements = path.elements
    needle = value.elements
    span = len(needle)
    if span == 0 or span > len(elements):
        return False
    return any(
        elements[start : start + span] == needle
        for start in range(len(elements) - span + 1)
    )


def _normalise_binding(
    binding: "Mapping[int, object] | None", arity: int, relation: str
) -> Binding:
    """Coerce binding values to paths and validate the positions."""
    if not binding:
        return {}
    normalised: Binding = {}
    for position, value in binding.items():
        if not isinstance(position, int) or not 0 <= position < arity:
            raise EvaluationError(
                f"binding position {position!r} is outside the argument range of "
                f"{relation!r} (arity {arity})"
            )
        normalised[position] = as_path(value)
    return normalised


def _restrict_output(full: Instance, relation: str, binding: Binding) -> Instance:
    """The output sub-instance: the relation's rows that match the binding.

    Bound positions are looked up through the storage layer's exact-argument
    index (the smallest bucket), so a selective binding never scans the whole
    output relation.
    """
    if not binding:
        output = full.restricted([relation])
        output.ensure_relation(relation)
        return output
    output = Instance()
    output.ensure_relation(relation)
    storage = full.storage(relation)
    if storage is None or not storage:
        return output
    rows = min(
        (storage.rows_with_path(position, value) for position, value in binding.items()),
        key=len,
    )
    for row in rows:
        if all(row[position] == value for position, value in binding.items()):
            output.add_fact(Fact(relation, row))
    return output


class ProgramQuery:
    """A Sequence Datalog program viewed as a query from a schema to one relation."""

    def __init__(
        self,
        program: Program,
        input_schema: "Schema | dict[str, int]",
        output_relation: str,
        *,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        strategy: Strategy = "seminaive",
        execution: ExecutionMode = "indexed",
        mode: QueryMode = "full",
        name: str | None = None,
        require_monadic: bool = True,
    ):
        self.program = program
        self.input_schema = input_schema if isinstance(input_schema, Schema) else Schema(input_schema)
        self.output_relation = output_relation
        self.limits = limits
        self.strategy: Strategy = strategy
        self.execution: ExecutionMode = execution
        if mode not in ("full", "goal"):
            raise EvaluationError(f"unknown query mode {mode!r}; use 'full' or 'goal'")
        self.mode: QueryMode = mode
        self.name = name or output_relation
        self._validate(require_monadic)
        self.output_arity: int = self.program.relation_arities()[output_relation]
        #: Per-adornment magic rewritings (or the reason they are unavailable),
        #: keyed by the tuple of bound positions.  Shared by every session.
        self._goal_programs: dict[tuple[int, ...], "object"] = {}

    def _validate(self, require_monadic: bool) -> None:
        if require_monadic and not self.input_schema.is_monadic():
            raise EvaluationError(
                f"the baseline queries of Section 3.1 use monadic input schemas; "
                f"got {self.input_schema!r} (pass require_monadic=False to override)"
            )
        if not self.program.is_over(self.input_schema):
            raise EvaluationError(
                f"the program is not over the input schema {self.input_schema!r}: "
                f"EDB = {sorted(self.program.edb_relation_names())}, "
                f"IDB = {sorted(self.program.idb_relation_names())}"
            )
        if self.output_relation not in self.program.idb_relation_names():
            raise EvaluationError(
                f"output relation {self.output_relation!r} is not an IDB relation of the program"
            )
        if self.output_relation in self.input_schema:
            raise EvaluationError(
                f"output relation {self.output_relation!r} must not belong to the input schema"
            )
        arity = self.program.relation_arities().get(self.output_relation, 1)
        if require_monadic and arity > 1:
            raise EvaluationError(
                f"output relation {self.output_relation!r} has arity {arity}; "
                f"queries return relations of arity at most one"
            )

    # -- goal compilation -------------------------------------------------------------------------

    def goal_program(self, binding: "Mapping[int, object] | None" = None):
        """The magic-set rewriting for *binding*'s adornment, or ``None`` + reason.

        Returns ``(MagicProgram | None, reason | None)``; the rewriting is
        computed once per adornment and cached on the query.  Adornments
        refused as expanding magic recursion are retried with generalized
        (more general) adornments — the returned program then records the
        adornment it was actually rewritten for, and callers must filter its
        answers down to the requested binding.
        """
        normalised = _normalise_binding(binding, self.output_arity, self.output_relation)
        return self._goal_program_for_key(tuple(sorted(normalised)))

    def _goal_program_for_key(self, key: tuple[int, ...]):
        """As :meth:`goal_program`, keyed by already-validated bound positions."""
        # Imported lazily: repro.transform depends on the engine package.
        from repro.analysis.adornment import Adornment
        from repro.transform.magic import magic_rewrite

        cached = self._goal_programs.get(key)
        if cached is None:
            try:
                cached = magic_rewrite(
                    self.program,
                    self.output_relation,
                    Adornment.from_positions(self.output_arity, key),
                    on_expanding="generalize",
                )
            except MagicSetUnsupportedError as error:
                cached = reason(REWRITE_UNSUPPORTED, str(error))
            self._goal_programs[key] = cached
        if isinstance(cached, str):
            return None, cached
        return cached, None

    # -- evaluation -------------------------------------------------------------------------------

    def session(
        self,
        instance: Instance,
        *,
        check_flat: bool = True,
        memoize: bool = True,
        shards: int = 1,
        executor: "str | ParallelExecutor" = "sequential",
        table_capacity: "int | None" = None,
        generalization_limit: "float | None" = DEFAULT_GENERALIZATION_LIMIT,
    ) -> "QuerySession":
        """Open a :class:`QuerySession` for repeated queries over *instance*.

        ``shards``/``executor`` configure sharded serving,
        ``table_capacity`` the subgoal answer table's LRU bound, and
        ``generalization_limit`` the cost model gating generalized tabling
        (``None`` disables it) — see :class:`QuerySession`.
        """
        return QuerySession(
            self,
            instance,
            check_flat=check_flat,
            memoize=memoize,
            shards=shards,
            executor=executor,
            table_capacity=table_capacity,
            generalization_limit=generalization_limit,
        )

    def run(
        self,
        instance: Instance,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
        check_flat: bool = True,
    ) -> QueryResult:
        """Run the query on *instance* and return the full :class:`QueryResult`.

        One-shot runs use a throwaway, non-memoizing session: building the
        maintenance support state would be pure overhead for a single query.
        """
        return self.session(instance, check_flat=check_flat, memoize=False).run(
            binding=binding, mode=mode
        )

    def answer(
        self,
        instance: Instance,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> frozenset[Path]:
        """Run the query and return the set of output paths (unary output)."""
        return self.run(instance, binding=binding, mode=mode).paths(self.output_relation)

    def boolean(
        self,
        instance: Instance,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> bool:
        """Run the query and interpret the (nullary) output relation as a boolean."""
        return self.run(instance, binding=binding, mode=mode).boolean()

    def answers_on(self, instances: Iterable[Instance]) -> list[frozenset[Path]]:
        """Run the query on several instances."""
        return [self.answer(instance) for instance in instances]

    # -- introspection ----------------------------------------------------------------------------

    def features(self):
        """Return the set of features used by the underlying program (Section 3)."""
        from repro.fragments.features import program_features

        return program_features(self.program)

    def __repr__(self) -> str:
        return (
            f"ProgramQuery(name={self.name!r}, output={self.output_relation!r}, "
            f"schema={self.input_schema!r}, mode={self.mode!r})"
        )


@dataclass(frozen=True)
class UpdateResult:
    """The outcome of one :meth:`QuerySession.update`.

    ``added`` / ``removed`` are the *effective* EDB changes (no-op additions
    and retractions net out, see :class:`~repro.model.instance.DeltaResult`).
    ``maintained`` says whether the session's materialized fixpoint was
    updated incrementally; when it is ``False`` and ``fallback_reason`` is
    set, maintenance could not cover the update (or broke its budget) and the
    next query will re-evaluate from scratch for that recorded reason.
    ``shards_touched`` (sharded sessions only) records which shards the
    effective EDB delta was routed to — disjointly-routed update batches
    touch disjoint shard partitions and never synchronize on each other's
    state.
    """

    added: frozenset[Fact]
    removed: frozenset[Fact]
    maintained: bool
    fallback_reason: "str | None"
    statistics: EvaluationStatistics
    shards_touched: "frozenset[int] | None" = None


class QuerySession:
    """Repeated (possibly goal-directed) queries over one pinned instance.

    The session validates the instance once, then caches the evaluation
    machinery that is worth keeping warm between queries: one
    :class:`ProgramEvaluators` per evaluated program (the full program and
    each magic rewriting), whose rule evaluators hold the compiled join
    plans, a subgoal :class:`~repro.engine.tabling.AnswerTable` for
    goal-mode calls, and — once a full-mode evaluation has happened — the
    full fixpoint itself as a
    :class:`~repro.engine.maintenance.MaintainedFixpoint`.

    Later full-mode queries (any binding) are answered from that
    materialization without re-evaluating; goal-mode queries use it too when
    it is available, since reading a maintained materialization beats even a
    magic-set run (such results keep ``mode == "goal"`` with
    ``served_by == "maintained"``).  Before a full materialization exists,
    goal-mode calls go through the answer table: a call subsumed by a
    previously evaluated goal is served from that entry
    (``served_by == "tabled"``), and a fresh call evaluates its magic
    program as a maintained materialization of its own and tables it.
    :meth:`update` mutates the pinned instance through a transactional
    :class:`~repro.model.instance.InstanceDelta` and maintains the
    materialization *and* every tabled subgoal incrementally.  Out-of-band
    mutations of the pinned instance are detected through the storage
    generations and absorbed via the relations' change logs when possible;
    anything maintenance cannot cover falls back to re-evaluation with a
    recorded reason (table entries degrade individually: an entry whose
    update cannot be maintained is evicted and re-evaluates on next demand).

    Results served from the materialization or the table share their
    ``full_instance`` with the session; treat it as read-only.
    """

    def __init__(
        self,
        query: ProgramQuery,
        instance: Instance,
        *,
        check_flat: bool = True,
        memoize: bool = True,
        shards: int = 1,
        executor: "str | ParallelExecutor" = "sequential",
        table_capacity: "int | None" = None,
        generalization_limit: "float | None" = DEFAULT_GENERALIZATION_LIMIT,
    ):
        if check_flat and not instance.is_flat():
            raise ModelError("queries are defined on flat instances (no packed values)")
        unknown = instance.relation_names - query.input_schema.relation_names
        if unknown:
            raise EvaluationError(
                f"instance uses relations {sorted(unknown)} outside the input schema"
            )
        self.query = query
        self.instance = instance
        #: When ``False`` (one-shot queries), full-mode runs evaluate plainly
        #: instead of building and memoizing maintenance support state, and
        #: goal-mode runs bypass the subgoal answer table.
        self._memoize = memoize
        self._evaluators: dict[int, ProgramEvaluators] = {}
        self._maintained: "MaintainedFixpoint | None" = None
        #: Sharded serving (``shards > 1``): the materialization is hash-
        #: partitioned (:class:`~repro.storage.partition.ShardingSpec` over
        #: planner-chosen keys), builds and large insertion cascades run
        #: shard-parallel rounds through *executor* (``"sequential"`` — the
        #: deterministic in-process default — or ``"process"`` for a
        #: ``concurrent.futures`` pool per shard; an already-constructed
        #: :class:`~repro.engine.sharding.ParallelExecutor` is used as-is),
        #: and update deltas are routed by key so disjointly-routed batches
        #: touch disjoint shard state.  Call :meth:`close` (or use the
        #: session as a context manager) to release process workers.
        self.shards = shards
        self._sharded: "ShardedFixpoint | None" = None
        self._shard_spec: "ShardingSpec | None" = None
        #: The consumer-aligned sharding plan behind ``_shard_spec`` (sharded
        #: sessions only): its modes/replication drive the partitioned
        #: executor and the worker-resident serving below.
        self._shard_plan: "ShardingPlan | None" = None
        if shards > 1:
            if not memoize:
                # A non-memoizing session never builds maintained state, and
                # the one-shot plain evaluation would silently ignore the
                # requested shards — refuse rather than pretend.
                raise EvaluationError(
                    "sharded serving requires a memoizing session; "
                    "drop memoize=False or shards"
                )
            self._shard_plan = choose_sharding_plan(query.program)
            self._shard_spec = self._shard_plan.spec(shards)
            if isinstance(executor, ParallelExecutor):
                shard_executor = executor
            elif executor == "sequential":
                shard_executor = SequentialExecutor(shards)
            elif executor == "process":
                shard_executor = ProcessExecutor(shards)
            else:
                raise EvaluationError(
                    f"unknown shard executor {executor!r}; use 'sequential', "
                    f"'process', or a ParallelExecutor instance"
                )
            self._sharded = ShardedFixpoint(
                query.program,
                self._shard_spec,
                shard_executor,
                query.limits,
                execution=query.execution,
                evaluators=self._evaluators_for(query.program),
                plan=self._shard_plan,
            )
        elif shards != 1:
            raise EvaluationError(f"shards must be at least 1, got {shards}")
        #: Safety net for leaked sharded sessions: a session that is garbage
        #: collected without :meth:`close` must not strand pinned
        #: :class:`~repro.engine.sharding.ProcessExecutor` workers.  The
        #: finalizer holds the :class:`ShardedFixpoint` (never the session
        #: itself), so collection of the session triggers the same executor
        #: shutdown an explicit close would have run.
        self._finalizer: "weakref.finalize | None" = None
        if self._sharded is not None:
            self._finalizer = weakref.finalize(self, ShardedFixpoint.close, self._sharded)
        #: Tabled goal-mode calls, by call subsumption.  The LRU capacity is
        #: a serving knob: sessions pinning many overlapping goals can raise
        #: it, memory-tight fleets can lower it (minimum 1).
        self.table_capacity = (
            DEFAULT_MAX_ENTRIES if table_capacity is None else table_capacity
        )
        self._tables = AnswerTable(max_entries=self.table_capacity, spec=self._shard_spec)
        #: Cost-model ceiling for *generalized* rewritings: a generalized
        #: goal subsumes the requested call, so its tabled entry can be
        #: arbitrarily larger than the slice actually demanded.  When the
        #: estimated sweep exceeds this multiple of the requested slice the
        #: session refuses to table it and falls back to full evaluation
        #: with a ``generalization_too_large`` reason.  ``None`` disables
        #: the model (always table); exactly-adorned rewritings are never
        #: affected.
        self.generalization_limit = generalization_limit
        #: Relation name → (storage object, generation) at the moment the
        #: maintained artifacts (materialization and table entries) were
        #: last in sync with the pinned instance.
        self._basis: "dict[str, tuple[object, int]]" = {}
        #: Why the last update (or out-of-band change) could not be
        #: maintained incrementally, if it could not.
        self.last_maintenance_fallback: "str | None" = None

    def _evaluators_for(self, program: Program) -> ProgramEvaluators:
        found = self._evaluators.get(id(program))
        if found is None:
            found = self._evaluators[id(program)] = ProgramEvaluators(
                self.query.limits, execution=self.query.execution
            )
        return found

    def _evaluate(
        self,
        program: Program,
        statistics: EvaluationStatistics,
        seed_facts: "Iterable[Fact] | None" = None,
    ) -> Instance:
        return evaluate_program(
            program,
            self.instance,
            self.query.limits,
            strategy=self.query.strategy,
            execution=self.query.execution,
            statistics=statistics,
            seed_facts=seed_facts,
            evaluators=self._evaluators_for(program),
        )

    # -- maintained artifacts (materialization + subgoal tables) -----------------------

    def _has_artifacts(self) -> bool:
        """Whether any maintained state (materialization or table entries) exists."""
        return self._maintained is not None or len(self._tables) > 0

    def _sync_basis(self) -> None:
        self._basis = {}
        for name in self.instance.relation_names:
            storage = self.instance.storage(name)
            if storage is not None:
                self._basis[name] = (storage, storage.watch())

    def _reference_rows(self, name: str) -> "frozenset":
        """Pre-drift rows of *name*, from whichever artifact tracked them.

        The main materialization mirrors every base relation; a table entry
        only maintains the relations its magic program mentions, so entries
        that know the relation are preferred over ones carrying a stale
        creation-time copy.
        """
        if self._maintained is not None:
            return self._maintained.materialized.relation(name)
        for entry in self._tables:
            if name in entry.known_relations:
                return entry.answers.relation(name)
        for entry in self._tables:
            return entry.answers.relation(name)
        return frozenset()

    def _pending_out_of_band_delta(self) -> "tuple[list[Fact], list[Fact]]":
        """EDB changes made to the pinned instance behind the session's back.

        Returns ``(additions, retractions)``, both empty when the instance is
        untouched.  The drift is always reconstructible: the change logs
        answer cheaply when they can, and otherwise an artifact still holds
        every relation's old rows, so a full diff recovers the delta.
        """
        additions: list[Fact] = []
        retractions: list[Fact] = []
        names_now = self.instance.relation_names
        for name in names_now:
            storage = self.instance.storage(name)
            entry = self._basis.get(name)
            if entry is not None and entry[0] is storage and entry[1] == storage.generation:
                continue
            changes = None
            if entry is not None and entry[0] is storage:
                changes = storage.changes_since(entry[1])
            if changes is None:
                # Log unavailable (overflow, wholesale rewrite, or a brand-new
                # relation object): diff against an artifact's old state.
                old_rows = self._reference_rows(name)
                new_rows = storage.view()
                changes = (new_rows - old_rows, old_rows - new_rows)
            added_rows, removed_rows = changes
            additions.extend(Fact(name, row) for row in added_rows)
            retractions.extend(Fact(name, row) for row in removed_rows)
        for name in self._basis.keys() - names_now:
            # The relation vanished out-of-band; its old rows are still in
            # the artifacts.
            retractions.extend(Fact(name, row) for row in self._reference_rows(name))
        return additions, retractions

    def _maintain_main(
        self,
        additions: "Iterable[Fact]",
        retractions: "Iterable[Fact]",
        statistics: EvaluationStatistics,
    ) -> None:
        """Advance the main materialization past a base delta.

        Facts of relations the program never mentions cannot affect any
        derived relation — the maintainer refuses them as unknown — so they
        are mirrored straight into the materialized instance instead, which
        keeps ``full_instance`` a faithful copy of the base.  Raises
        :class:`~repro.errors.EvaluationError` when maintenance cannot cover
        the program-relevant part.
        """
        assert self._maintained is not None
        additions = list(additions)
        retractions = list(retractions)
        known = self._maintained.program.relation_names()
        self._maintained.update(
            [fact for fact in additions if fact.relation in known],
            [fact for fact in retractions if fact.relation in known],
            statistics=statistics,
        )
        stray_removed = [fact for fact in retractions if fact.relation not in known]
        stray_added = [fact for fact in additions if fact.relation not in known]
        for fact in stray_removed:
            self._maintained.materialized.discard_fact(fact, keep_empty=True)
        for fact in stray_added:
            self._maintained.materialized.add_fact(fact)
        if (stray_added or stray_removed) and self._maintained.sharding is not None:
            # The mirrored strays are part of the materialization, so the
            # partitioned mirror (and worker state) must see them too.
            self._maintained.sharding.absorb(stray_added, stray_removed)

    def _absorb_out_of_band(self, statistics: EvaluationStatistics) -> None:
        """Bring every maintained artifact up to date with the pinned instance.

        A drift the main materialization cannot be maintained through drops
        it (with the reason recorded); table entries degrade individually.
        """
        if not self._has_artifacts():
            return
        additions, retractions = self._pending_out_of_band_delta()
        if not additions and not retractions:
            # Re-sync even on netted-out drift, so stale marks do not keep
            # re-folding an ever-growing change log on every query.
            self._sync_basis()
            return
        if self._maintained is not None:
            try:
                self._maintain_main(additions, retractions, statistics)
            except EvaluationError as error:
                self.last_maintenance_fallback = maintenance_reason(error)
                self._maintained = None
        self._tables.apply_update(additions, retractions, statistics)
        self._sync_basis()

    def _materialization(
        self, statistics: EvaluationStatistics
    ) -> "tuple[MaintainedFixpoint, ServedBy]":
        """The maintained full fixpoint, synced with the pinned instance.

        Out-of-band drift has already been absorbed by :meth:`run`; this
        either serves the live materialization or (re)builds it from
        scratch.  The second component says how the caller's answer was
        produced.
        """
        if not self._memoize:
            return self._plain_materialization(statistics), "full"
        if self._maintained is not None:
            return self._maintained, "maintained"
        try:
            maintained = MaintainedFixpoint.evaluate(
                self.query.program,
                self.instance,
                self.query.limits,
                strategy=self.query.strategy,
                execution=self.query.execution,
                statistics=statistics,
                evaluators=self._evaluators_for(self.query.program),
                sharding=self._sharded,
            )
        except EvaluationError as error:
            if isinstance(error, EvaluationBudgetExceeded):
                raise
            # The program cannot be maintained (e.g. a relation defined in
            # several strata): evaluate plainly and serve without a memo.
            self.last_maintenance_fallback = maintenance_reason(error)
            return self._plain_materialization(statistics), "full"
        self._maintained = maintained
        # The materialization subsumes every tabled subgoal; keeping the
        # entries alive would only make later updates maintain dead state.
        self._tables.clear()
        self._sync_basis()
        return maintained, "full"

    def _plain_materialization(self, statistics: EvaluationStatistics) -> MaintainedFixpoint:
        """A one-shot full evaluation wrapped for serving, with no memo state."""
        full = self._evaluate(self.query.program, statistics)
        return MaintainedFixpoint(
            self.query.program,
            full,
            [],
            self.query.limits,
            self.query.strategy,
            self.query.execution,
            self._evaluators_for(self.query.program),
        )

    # -- updates -----------------------------------------------------------------------

    def update(
        self,
        additions: Iterable[Fact] = (),
        retractions: Iterable[Fact] = (),
    ) -> UpdateResult:
        """Apply an EDB delta to the pinned instance and maintain the fixpoint.

        The delta is applied atomically through
        :meth:`~repro.model.instance.Instance.begin_delta`; if a materialized
        fixpoint exists it is maintained incrementally (counting for
        non-recursive strata, delete–rederive for recursive ones, signed
        deltas through stratified negation), and so is every tabled subgoal.
        Updates maintenance cannot cover — budget breaches, stray relations
        — drop the materialization and record the reason; the next query
        transparently re-evaluates from scratch.  Table entries degrade
        individually: an entry whose
        magic program cannot be maintained through the update is evicted and
        re-evaluates on next demand.  ``UpdateResult.maintained`` reports
        whether the session still holds incrementally updated state — the
        materialization when one existed, otherwise surviving table entries.
        """
        # Out-of-band drift must be measured before the delta mutates the
        # instance, and absorbed as its own maintenance step before the
        # in-band changes — otherwise the basis sync below would bury it.
        out_of_band: "tuple[list[Fact], list[Fact]]" = ([], [])
        if self._has_artifacts():
            out_of_band = self._pending_out_of_band_delta()
        delta = self.instance.begin_delta()
        for verb, facts in (("add", additions), ("retract", retractions)):
            for fact in facts:
                if fact.relation not in self.query.input_schema:
                    raise EvaluationError(
                        f"cannot {verb} facts of relation {fact.relation!r}: it is "
                        f"outside the input schema {self.query.input_schema!r}"
                    )
                if verb == "add":
                    delta.add_fact(fact)
                else:
                    delta.retract_fact(fact)
        applied = delta.apply()

        statistics = EvaluationStatistics()
        had_entries = len(self._tables) > 0
        maintained = False
        fallback: "str | None" = None
        if self._maintained is not None:
            try:
                if out_of_band[0] or out_of_band[1]:
                    self._maintain_main(*out_of_band, statistics=statistics)
                self._maintain_main(applied.added, applied.removed, statistics=statistics)
            except EvaluationError as error:
                fallback = maintenance_reason(error)
                self._maintained = None
            else:
                maintained = True
        evicted: "list[tuple[TableEntry, str]]" = []
        if out_of_band[0] or out_of_band[1]:
            evicted += self._tables.apply_update(*out_of_band, statistics=statistics)
        evicted += self._tables.apply_update(
            applied.added, applied.removed, statistics=statistics
        )
        if not maintained and fallback is None and had_entries:
            # Goal-only session: the tables are the maintained state.
            if len(self._tables) > 0:
                maintained = True
            elif evicted:
                fallback = evicted[0][1]
        if self._has_artifacts():
            self._sync_basis()
        else:
            self._basis = {}
        self.last_maintenance_fallback = fallback
        shards_touched: "frozenset[int] | None" = None
        if self._shard_spec is not None:
            shards_touched = frozenset(
                shard
                for shard, part in enumerate(
                    self._shard_spec.partition_facts(applied.added | applied.removed)
                )
                if part
            )
        return UpdateResult(
            added=applied.added,
            removed=applied.removed,
            maintained=maintained,
            fallback_reason=fallback,
            statistics=statistics,
            shards_touched=shards_touched,
        )

    # -- queries -----------------------------------------------------------------------

    def run(
        self,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> QueryResult:
        """Run the query against the session's instance."""
        query = self.query
        wanted_mode: QueryMode = mode if mode is not None else query.mode
        if wanted_mode not in ("full", "goal"):
            raise EvaluationError(f"unknown query mode {wanted_mode!r}; use 'full' or 'goal'")
        normalised = _normalise_binding(binding, query.output_arity, query.output_relation)
        statistics = EvaluationStatistics()
        if self._memoize:
            self._absorb_out_of_band(statistics)

        fallback_reason: "str | None" = None
        if wanted_mode == "goal":
            key = tuple(sorted(normalised))
            if self._memoize and self._maintained is not None:
                # A maintained full materialization is already warm: reading
                # it beats even a goal-directed run.  The request keeps its
                # goal identity (mode stays "goal"), and the compile-time
                # fallback reason — what a cold run would have hit — is
                # threaded through so callers still see it.  Partition-local
                # goals (singleton shard footprint) go to the resident worker
                # owning that shard instead — no parent-side read at all.
                compiled, fallback_reason = query._goal_program_for_key(key)
                if compiled is not None:
                    served = self._serve_from_worker(compiled, normalised, statistics)
                    if served is not None:
                        return served
                return self._serve_from_materialization(
                    normalised,
                    statistics=statistics,
                    mode="goal",
                    fallback_reason=fallback_reason,
                )
            if self._memoize:
                entry = self._tables.lookup(key, normalised, statistics)
                if entry is not None:
                    return self._serve_from_entry(entry, normalised, statistics)
            compiled, fallback_reason = query._goal_program_for_key(key)
            if compiled is not None and self._memoize:
                too_large = self._generalization_guard(compiled, normalised)
                if too_large is not None:
                    compiled, fallback_reason = None, too_large
            if compiled is not None:
                result, fallback_reason = self._evaluate_goal(
                    compiled, normalised, statistics
                )
                if result is not None:
                    return result

        # Full-mode requests, and goal-mode requests that genuinely fell back
        # to full evaluation (refused rewriting, budget breach): the answer
        # is computed as a full query, and mode records that.
        return self._serve_from_materialization(
            normalised,
            statistics=statistics,
            fallback_reason=fallback_reason,
        )

    def _generalization_guard(self, compiled, normalised: Binding) -> "str | None":
        """The tabling cost model: refuse oversized generalized entries.

        A generalized rewriting (``on_expanding="generalize"``) drops bound
        positions from the goal, so the entry it would table answers a
        strictly wider call than the one requested — in the worst case the
        all-free goal, which materializes the whole output relation.  That
        is a great trade when later calls hit the entry, and a terrible one
        when the requested slice is a sliver of a large instance.

        The estimate is deliberately cheap and symmetric: the generalized
        sweep is bounded by the magic program's *total* EDB rows (nothing
        restricts it), while the requested slice is proportional to the EDB
        rows that mention one of the requested bound values (an index-bucket
        estimate — equality or contiguous-subsequence containment, the two
        access shapes Sequence Datalog bodies have).  When the ratio exceeds
        :attr:`generalization_limit`, the returned reason (starting with
        ``generalization_too_large``) makes the caller fall back to full
        evaluation, whose materialization is at least reusable for *every*
        later call.
        """
        limit = self.generalization_limit
        if limit is None or not compiled.generalized:
            return None
        edb = compiled.program.edb_relation_names() - {compiled.magic_seed_relation}
        bound_values = list(normalised.values())
        total = 0
        touching = 0
        for name in sorted(edb & self.instance.relation_names):
            rows = self.instance.relation(name)
            total += len(rows)
            for row in rows:
                if any(
                    _mentions(path, value) for path in row for value in bound_values
                ):
                    touching += 1
        ratio = total / max(1, touching)
        if ratio <= limit:
            return None
        return reason(
            GENERALIZATION_TOO_LARGE,
            f"tabling the generalized goal "
            f"({compiled.adornment.suffix() or 'g'} for requested "
            f"{compiled.requested_adornment.suffix() or 'g'}) would sweep "
            f"~{total} EDB rows against a requested slice touching ~{touching} "
            f"(ratio {ratio:.0f} > limit {limit:g}); fell back to full evaluation",
        )

    def _evaluate_goal(
        self,
        compiled,
        normalised: Binding,
        statistics: EvaluationStatistics,
    ) -> "tuple[QueryResult | None, str | None]":
        """Evaluate one goal-directed call, tabling its answers when memoizing.

        Returns ``(result, None)`` on success and ``(None, reason)`` when the
        evaluation breached its budget and the caller must fall back to full
        evaluation.
        """
        query = self.query
        seed_binding = {
            position: normalised[position]
            for position in compiled.adornment.bound_positions
        }
        seed = compiled.seed_fact(seed_binding)
        try:
            if self._memoize:
                entry = self._table_entry_for(compiled, seed_binding, seed, statistics)
                self._tables.insert(entry)
                self._sync_basis()
                full = entry.answers
            else:
                full = self._evaluate(compiled.program, statistics, seed_facts=(seed,))
        except EvaluationBudgetExceeded as error:
            return None, reason(
                GOAL_BUDGET_EXCEEDED,
                f"goal-directed evaluation exceeded the limits ({error}); "
                f"fell back to full evaluation",
            )
        output = _restrict_output(full, query.output_relation, normalised)
        return (
            QueryResult(
                output=output,
                full_instance=full,
                statistics=statistics,
                output_relation=query.output_relation,
                binding=normalised,
                mode="goal",
                served_by="goal",
            ),
            None,
        )

    def _table_entry_for(
        self,
        compiled,
        seed_binding: Binding,
        seed: Fact,
        statistics: EvaluationStatistics,
    ) -> TableEntry:
        """Evaluate *compiled* from *seed* into a (preferably maintained) entry."""
        positions = tuple(compiled.adornment.bound_positions)
        values = tuple(seed_binding[position] for position in positions)
        try:
            fixpoint = MaintainedFixpoint.evaluate(
                compiled.program,
                self.instance,
                self.query.limits,
                strategy=self.query.strategy,
                execution=self.query.execution,
                statistics=statistics,
                evaluators=self._evaluators_for(compiled.program),
                seed_facts=(seed,),
            )
        except MaintenanceUnsupportedError:
            # The magic program cannot be maintained; table a plain snapshot
            # (served until the first update that touches its relations).
            snapshot = self._evaluate(compiled.program, statistics, seed_facts=(seed,))
            return TableEntry(
                self.query.output_relation,
                positions,
                values,
                compiled,
                snapshot=snapshot,
                shard_footprint=self._entry_footprint(compiled, seed_binding),
            )
        return TableEntry(
            self.query.output_relation,
            positions,
            values,
            compiled,
            fixpoint=fixpoint,
            shard_footprint=self._entry_footprint(compiled, seed_binding),
        )

    def _entry_footprint(self, compiled, seed_binding: Binding) -> "frozenset[int] | None":
        """The shards this entry's answers can depend on (``None`` = all)."""
        if self._shard_spec is None:
            return None
        return goal_shard_footprint(compiled, self._shard_spec, seed_binding)

    def _serve_from_worker(
        self,
        compiled,
        normalised: Binding,
        statistics: EvaluationStatistics,
    ) -> "QueryResult | None":
        """Serve a partition-local goal from the resident worker that owns it.

        Only fires when the goal's shard footprint is a single shard (every
        EDB access of its magic program is pinned to seed values homed
        there, see :func:`~repro.engine.sharding.goal_shard_footprint` —
        that worker's partition plus its full copies of the replicated
        relations then contain every base row the goal can touch), the
        executor keeps resident workers (process pools, partitioned), and
        the materialization is live (so the worker replicas are known to be
        in step).  Returns ``None`` otherwise — the caller serves from the
        parent materialization as before.
        """
        if self._sharded is None or self._maintained is None:
            return None
        seed_binding = {
            position: normalised[position]
            for position in compiled.adornment.bound_positions
        }
        footprint = self._entry_footprint(compiled, seed_binding)
        if footprint is None or len(footprint) != 1:
            return None
        seed = compiled.seed_fact(seed_binding)
        rows = self._sharded.run_goal(
            next(iter(footprint)), compiled.program, (seed,), statistics
        )
        if rows is None:
            return None
        answers = Instance()
        for name, relation_rows in rows.items():
            answers.set_relation_rows(name, relation_rows)
        for name in compiled.program.idb_relation_names():
            answers.ensure_relation(name)
        # A generalized rewriting answers a wider call than requested; the
        # binding restriction narrows it back down, exactly as for entries.
        output = _restrict_output(answers, self.query.output_relation, normalised)
        return QueryResult(
            output=output,
            full_instance=answers,
            statistics=statistics,
            output_relation=self.query.output_relation,
            binding=normalised,
            mode="goal",
            served_by="worker",
        )

    def _serve_from_entry(
        self, entry: TableEntry, normalised: Binding, statistics: EvaluationStatistics
    ) -> QueryResult:
        """Answer a goal-mode call from a subsuming tabled goal."""
        output = _restrict_output(entry.answers, self.query.output_relation, normalised)
        return QueryResult(
            output=output,
            full_instance=entry.answers,
            statistics=statistics,
            output_relation=self.query.output_relation,
            binding=normalised,
            mode="goal",
            served_by="tabled",
        )

    def _serve_from_materialization(
        self,
        normalised: Binding,
        *,
        statistics: "EvaluationStatistics | None" = None,
        mode: QueryMode = "full",
        fallback_reason: "str | None" = None,
    ) -> QueryResult:
        """Answer a query from the (synced) materialization.

        *mode* carries the request's identity: a goal-mode request served
        here keeps ``mode == "goal"`` (with ``served_by`` saying how the
        answer was actually produced).
        """
        if statistics is None:
            statistics = EvaluationStatistics()
        maintained, served_by = self._materialization(statistics)
        output = _restrict_output(
            maintained.materialized, self.query.output_relation, normalised
        )
        return QueryResult(
            output=output,
            full_instance=maintained.materialized,
            statistics=statistics,
            output_relation=self.query.output_relation,
            binding=normalised,
            mode=mode,
            fallback_reason=fallback_reason,
            served_by=served_by,
        )

    def answer(
        self,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> frozenset[Path]:
        """Run against the pinned instance and return the output paths."""
        return self.run(binding=binding, mode=mode).paths(self.query.output_relation)

    def boolean(
        self,
        *,
        binding: "Mapping[int, object] | None" = None,
        mode: "QueryMode | None" = None,
    ) -> bool:
        """Run against the pinned instance and read the nullary output as a boolean."""
        return self.run(binding=binding, mode=mode).boolean()

    # -- sharding ----------------------------------------------------------------------

    @property
    def sharding(self) -> "ShardedFixpoint | None":
        """The session's shard-parallel round engine (``None`` unsharded).

        Exposes the partitioned mirror of the materialization
        (``sharding.sharded``) and the per-shard work counters the
        benchmarks assert balance on.
        """
        return self._sharded

    @property
    def materialized(self) -> "Instance | None":
        """The maintained full materialization, or ``None`` when no full-mode
        evaluation has happened yet (or the last update dropped it).

        The serving layer reads committed snapshots off this instance; treat
        it as read-only.
        """
        return self._maintained.materialized if self._maintained is not None else None

    # -- durability (state export / restore) -------------------------------------------

    def export_state(self) -> dict:
        """The session's full serving state as a JSON-serializable document.

        Everything a :meth:`restore` needs to come back serving without
        re-evaluating: the pinned EDB, the maintained materialization plus
        its per-stratum support state (:meth:`MaintainedFixpoint.support_state`),
        every tabled goal's seed and answers, and — for sharded sessions —
        the sharding plan (compared on restore as a compatibility
        handshake).  The document is stamped with
        :data:`SESSION_STATE_VERSION`.
        """
        # Imported lazily: repro.io.serialization depends on this module.
        from repro.io.serialization import (
            _answers_to_json,
            fact_to_json,
            path_to_text,
            rows_to_json,
        )

        state: dict = {
            "version": SESSION_STATE_VERSION,
            "edb": {
                name: rows_to_json(self.instance.relation(name))
                for name in sorted(self.instance.relation_names)
            },
            "materialization": None,
            "strata": None,
            "table": [],
            "sharding": None,
        }
        if self._maintained is not None:
            materialized = self._maintained.materialized
            state["materialization"] = {
                name: rows_to_json(materialized.relation(name))
                for name in sorted(materialized.relation_names)
            }
            state["strata"] = [
                {
                    "recursive": recursive,
                    "counts": None
                    if counts is None
                    else sorted(
                        [fact_to_json(fact), count] for fact, count in counts.items()
                    ),
                    "pinned": sorted(fact_to_json(fact) for fact in pinned),
                }
                for recursive, counts, pinned in self._maintained.support_state()
            ]
        for entry in self._tables:
            state["table"].append(
                {
                    "positions": list(entry.positions),
                    "values": [path_to_text(value) for value in entry.values],
                    "answers": _answers_to_json(entry.answers),
                }
            )
        if self._shard_plan is not None:
            state["sharding"] = {
                "shard_count": self.shards,
                "plan": self._shard_plan.to_json(),
            }
        return state

    @classmethod
    def restore(
        cls,
        query: ProgramQuery,
        state: "Mapping[str, object]",
        *,
        shards: int = 1,
        executor: "str | ParallelExecutor" = "sequential",
        table_capacity: "int | None" = None,
        generalization_limit: "float | None" = DEFAULT_GENERALIZATION_LIMIT,
    ) -> "QuerySession":
        """Rebuild a session from an :meth:`export_state` document.

        The restored session serves identically to the one that exported
        the state — same materialization, same maintenance support, same
        tabled answers — without evaluating anything, which is what makes
        restore-from-snapshot fast.  Tabled goals come back as serve-only
        snapshot entries (their magic rewriting is re-derived from the
        program; an entry whose adornment this build rewrites differently
        is dropped rather than restored wrong, and any snapshot entry is
        evicted by the first update that touches it).  A state written by
        an incompatible build — different :data:`SESSION_STATE_VERSION`,
        or a sharding plan this build's planner would not choose — is
        refused with :class:`~repro.errors.SnapshotUnsupportedError`;
        *shards*/*executor* themselves may differ freely from the exporting
        session's (routing is recomputed).
        """
        # Imported lazily: repro.io.serialization depends on this module.
        from repro.io.serialization import (
            _answers_from_json,
            fact_from_json,
            path_from_text,
            rows_from_json,
        )

        version = state.get("version")
        if version != SESSION_STATE_VERSION:
            raise SnapshotUnsupportedError(
                reason(
                    SNAPSHOT_UNSUPPORTED,
                    f"session state version {version!r} is not readable by this "
                    f"build (expected {SESSION_STATE_VERSION})",
                )
            )
        instance = Instance()
        for name, rows in dict(state.get("edb") or {}).items():
            instance.ensure_relation(name)
            instance.set_relation_rows(name, rows_from_json(rows))
        session = cls(
            query,
            instance,
            shards=shards,
            executor=executor,
            table_capacity=table_capacity,
            generalization_limit=generalization_limit,
        )
        stored_sharding = state.get("sharding")
        if session._shard_plan is not None and stored_sharding is not None:
            if stored_sharding.get("plan") != session._shard_plan.to_json():
                session.close()
                raise SnapshotUnsupportedError(
                    reason(
                        SNAPSHOT_UNSUPPORTED,
                        "the snapshot's sharding plan differs from the plan this "
                        "build chooses for the program",
                    )
                )
        materialization = state.get("materialization")
        strata = state.get("strata")
        if materialization is not None and strata is not None:
            materialized = Instance()
            for name, rows in dict(materialization).items():
                materialized.ensure_relation(name)
                materialized.set_relation_rows(name, rows_from_json(rows))
            for name in query.program.idb_relation_names():
                materialized.ensure_relation(name)
            support = [
                (
                    bool(stratum["recursive"]),
                    None
                    if stratum.get("counts") is None
                    else {
                        fact_from_json(fact): int(count)
                        for fact, count in stratum["counts"]
                    },
                    frozenset(fact_from_json(fact) for fact in stratum.get("pinned", ())),
                )
                for stratum in strata
            ]
            session._maintained = MaintainedFixpoint.from_support(
                query.program,
                materialized,
                support,
                query.limits,
                query.strategy,
                query.execution,
                session._evaluators_for(query.program),
                sharding=session._sharded,
            )
        for stored in state.get("table") or ():
            positions = tuple(int(position) for position in stored["positions"])
            values = tuple(path_from_text(text) for text in stored["values"])
            compiled, _refusal = query._goal_program_for_key(positions)
            if compiled is None:
                continue
            if tuple(compiled.adornment.bound_positions) != positions:
                continue
            answers = _answers_from_json(stored["answers"])
            for name in compiled.program.idb_relation_names():
                answers.ensure_relation(name)
            seed_binding = dict(zip(positions, values))
            session._tables.insert(
                TableEntry(
                    query.output_relation,
                    positions,
                    values,
                    compiled,
                    snapshot=answers,
                    shard_footprint=session._entry_footprint(compiled, seed_binding),
                )
            )
        session._sync_basis()
        return session

    def close(self) -> None:
        """Release sharding workers (idempotent; a no-op for plain sessions).

        Closing detaches the GC finalizer first, so an explicit close followed
        by garbage collection shuts the executor down exactly once (the
        executor's own ``close`` is idempotent as well, making double-close
        safe even for exotic executors).
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._sharded is not None:
            self._sharded.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
