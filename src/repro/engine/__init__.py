"""Evaluation engine: matching, rule evaluation, stratified fixpoints, queries."""

from repro.engine.evaluation import (
    ExecutionMode,
    RuleEvaluator,
    evaluate_rule,
    plan_body_order,
    plan_literal_sequence,
    satisfying_valuations,
)
from repro.engine.fixpoint import (
    EvaluationStatistics,
    ProgramEvaluators,
    Strategy,
    evaluate_program,
    evaluate_stratum,
    propagate_delta,
)
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.engine.maintenance import MaintainedFixpoint, MaintenanceResult
from repro.engine.match import match_components, match_expression, match_fact
from repro.engine.query import (
    ProgramQuery,
    QueryMode,
    QueryResult,
    QuerySession,
    UpdateResult,
)
from repro.engine.sharding import (
    ParallelExecutor,
    ProcessExecutor,
    SequentialExecutor,
    ShardedFixpoint,
    ShardedInstance,
    goal_shard_footprint,
)
from repro.engine.tabling import AnswerTable, TableEntry
from repro.engine.valuation import Valuation

__all__ = [
    "DEFAULT_LIMITS",
    "AnswerTable",
    "EvaluationLimits",
    "EvaluationStatistics",
    "ExecutionMode",
    "MaintainedFixpoint",
    "MaintenanceResult",
    "ParallelExecutor",
    "ProcessExecutor",
    "ProgramEvaluators",
    "ProgramQuery",
    "QueryMode",
    "QueryResult",
    "QuerySession",
    "RuleEvaluator",
    "SequentialExecutor",
    "ShardedFixpoint",
    "ShardedInstance",
    "Strategy",
    "TableEntry",
    "UpdateResult",
    "Valuation",
    "goal_shard_footprint",
    "evaluate_program",
    "evaluate_rule",
    "evaluate_stratum",
    "match_components",
    "match_expression",
    "match_fact",
    "plan_body_order",
    "plan_literal_sequence",
    "propagate_delta",
    "satisfying_valuations",
]
