"""Incremental view maintenance of stratified fixpoints.

A serving workload rarely re-asks a query over a fresh database: it asks the
same query over a database that drifted by a handful of facts.  This module
keeps a program's materialized fixpoint — the result of
:func:`~repro.engine.fixpoint.evaluate_program` — *maintained* under such
drifts instead of recomputing it:

* **Counting** (non-recursive strata): every derived fact carries the number
  of distinct ``(rule, body valuation)`` derivations supporting it.  An
  update changes the counts by the telescoped delta joins
  ``new⁽<i⁾ ⊗ Δi ⊗ old⁽>i⁾`` (one term per body position over a changed
  relation), which enumerate each gained and lost derivation exactly once;
  a fact appears when its count leaves zero and disappears when it returns
  there.
* **Delete–rederive** (recursive strata): deletions are first *over-deleted*
  (everything derivable through a deleted fact, to a fixpoint, evaluated
  against the old state), then every over-deleted fact gets a chance to
  *rederive* itself from the surviving facts (a head-bound body probe via
  :meth:`~repro.engine.evaluation.RuleEvaluator.derivations`), and finally
  insertions propagate through the ordinary semi-naive core
  (:func:`~repro.engine.fixpoint.propagate_delta`) shared with full
  evaluation.

Both algorithms propagate **signed** deltas through stratified negation.  A
negated literal ``not N(t̄)`` is an indicator that flips when ``N`` changes,
so the telescoped joins gain one extra pivot per changed negated position:
the literal is flipped positive, restricted to the delta rows of ``N``, and
its contribution enters with the *opposite* sign (an addition to ``N``
retracts downstream derivations, a retraction adds them).  Delete–rederive
likewise seeds extra overdeletions from additions to negated relations
(evaluated against the pre-update overlay) and extra insertions from
retractions (evaluated against the new state).  Stratification makes this
sound: a negated relation is always owned by an earlier stratum, so its net
delta is final by the time any reader maintains.  Only updates naming
relations the program has never heard of are refused upfront with
:class:`~repro.errors.MaintenanceUnsupportedError` — plus, defensively,
genuinely unstratifiable programs at build time.  The property tests in
``tests/properties/test_maintenance_agreement.py`` assert that a maintained
materialization stays extensionally identical to a from-scratch fixpoint
across strategy × execution combinations, including retractions and
retraction streams through negated literals.

A maintained fixpoint can additionally run **sharded**
(:mod:`repro.engine.sharding`): pass a
:class:`~repro.engine.sharding.ShardedFixpoint` and the build evaluates
recursive strata with shard-parallel rounds, while every update phase fans
its delta work out by home shard — counting pivots partition their overlay
rows, overdeletion and rederivation partition their frontiers, and the
insertion cascade runs through the sharded round engine (parallel under a
process executor).  The maintained result is extensionally identical either
way; sharding partitions the work and keeps a
:class:`~repro.engine.sharding.ShardedInstance` mirror of the
materialization in step.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable

from repro.engine.evaluation import ExecutionMode, RuleEvaluator
from repro.engine.fixpoint import (
    EvaluationStatistics,
    ProgramEvaluators,
    Strategy,
    evaluate_stratum,
    propagate_delta,
)
from repro.engine.limits import DEFAULT_LIMITS, EvaluationLimits
from repro.errors import EvaluationError, MaintenanceUnsupportedError
from repro.model.instance import Fact, Instance
from repro.syntax.programs import Program, Stratum

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.sharding import ShardedFixpoint

__all__ = ["MaintainedFixpoint", "MaintenanceResult"]


class MaintenanceResult:
    """The net effect one :meth:`MaintainedFixpoint.update` had.

    ``added`` and ``removed`` are the facts (EDB and derived alike) that
    appeared in / disappeared from the materialization; ``statistics``
    accumulates the evaluation counters of the maintenance run.
    """

    __slots__ = ("added", "removed", "statistics")

    def __init__(
        self,
        added: frozenset[Fact],
        removed: frozenset[Fact],
        statistics: EvaluationStatistics,
    ):
        self.added = added
        self.removed = removed
        self.statistics = statistics

    def __repr__(self) -> str:
        return f"MaintenanceResult(+{len(self.added)}, -{len(self.removed)})"


class _StratumState:
    """Per-stratum maintenance state.

    ``counts`` (counting strata only) maps each derived fact to its number
    of distinct ``(rule, body valuation)`` derivations.  ``pinned`` holds
    facts of this stratum's head relations that were already present in the
    *input* instance: they are axioms, never retracted by maintenance.
    """

    __slots__ = ("recursive", "counts", "pinned")

    def __init__(self, recursive: bool, pinned: frozenset[Fact]):
        self.recursive = recursive
        self.counts: "dict[Fact, int] | None" = None if recursive else {}
        self.pinned = pinned


class _ChangeSet:
    """The update's running per-relation delta, threaded through the strata.

    Keeps three overlay instances the telescoped joins and overdeletion use
    as frontier sources: the added rows, the removed rows, and the *old*
    rows (pre-update state) of every changed relation.
    """

    __slots__ = ("names", "added", "removed", "added_overlay", "removed_overlay", "old_overlay")

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.added: dict[str, set] = {}
        self.removed: dict[str, set] = {}
        self.added_overlay = Instance()
        self.removed_overlay = Instance()
        self.old_overlay = Instance()

    def record(
        self,
        name: str,
        added_rows: "set | frozenset",
        removed_rows: "set | frozenset",
        old_rows: "Iterable | None",
    ) -> None:
        """Register *name* as changed; *old_rows* may be ``None`` when no
        later consumer will read the old state (final stratum)."""
        if not added_rows and not removed_rows:
            return
        self.names.add(name)
        self.added[name] = set(added_rows)
        self.removed[name] = set(removed_rows)
        self.added_overlay.set_relation_rows(name, added_rows)
        self.removed_overlay.set_relation_rows(name, removed_rows)
        if old_rows is not None:
            self.old_overlay.set_relation_rows(name, old_rows)

    def facts(self, source: dict, wanted: "frozenset[str] | set[str]") -> set[Fact]:
        """The added/removed facts whose relation is in *wanted*."""
        return {
            Fact(name, row)
            for name in self.names & set(wanted)
            for row in source.get(name, ())
        }


class MaintainedFixpoint:
    """A materialized program fixpoint that can be updated in place.

    Built by :meth:`evaluate` (which shares the semi-naive core and the
    compiled-plan cache with :func:`~repro.engine.fixpoint.evaluate_program`)
    and advanced by :meth:`update`.  After an update, :attr:`materialized`
    is extensionally identical to re-evaluating the program on the updated
    base instance.  If an update raises, the state may be partially applied
    and the fixpoint marks itself stale; further updates are refused and the
    owner must rebuild from scratch.
    """

    def __init__(
        self,
        program: Program,
        materialized: Instance,
        states: list[_StratumState],
        limits: EvaluationLimits,
        strategy: Strategy,
        execution: ExecutionMode,
        evaluators: ProgramEvaluators,
        sharding: "ShardedFixpoint | None" = None,
    ):
        self.program = program
        self.materialized = materialized
        self.limits = limits
        self.strategy: Strategy = strategy
        self.execution: ExecutionMode = execution
        self.evaluators = evaluators
        #: The shard-parallel round engine (and partitioned mirror of the
        #: materialization), when this fixpoint runs sharded.
        self.sharding = sharding
        self._states = states
        self._idb = program.idb_relation_names()
        self._known = program.relation_names()
        self._valid = True

    def _absorb(self, added: "Iterable[Fact]" = (), removed: "Iterable[Fact]" = ()) -> None:
        """Mirror parent-side materialization changes into the sharded view."""
        if self.sharding is not None:
            self.sharding.absorb(tuple(added), tuple(removed))

    @contextmanager
    def _shard_statistics(self, shard: "int | None", statistics: EvaluationStatistics):
        """Per-shard work accounting for one fanned-out maintenance slice.

        Unsharded (``shard is None``) the aggregate object is used directly;
        sharded, a fresh object collects the slice's counters and is folded
        into both the fixpoint's per-shard tally and the aggregate on exit.
        """
        if shard is None:
            yield statistics
            return
        shard_stats = EvaluationStatistics()
        try:
            yield shard_stats
        finally:
            assert self.sharding is not None
            self.sharding.per_shard_extension_attempts[shard] += (
                shard_stats.extension_attempts
            )
            statistics.absorb_counters(shard_stats)

    # -- construction ------------------------------------------------------------------

    @classmethod
    def evaluate(
        cls,
        program: Program,
        instance: Instance,
        limits: EvaluationLimits = DEFAULT_LIMITS,
        *,
        strategy: Strategy = "seminaive",
        execution: ExecutionMode = "indexed",
        statistics: "EvaluationStatistics | None" = None,
        evaluators: "ProgramEvaluators | None" = None,
        seed_facts: "Iterable[Fact] | None" = None,
        sharding: "ShardedFixpoint | None" = None,
    ) -> "MaintainedFixpoint":
        """Materialize *program* over a copy of *instance*, with support state.

        Equivalent to :func:`~repro.engine.fixpoint.evaluate_program` on the
        same inputs, but non-recursive strata are evaluated *counting* —
        each derivation enumerated once and tallied — so later updates can
        maintain them exactly.  Raises
        :class:`~repro.errors.MaintenanceUnsupportedError` (before doing any
        work) for programs whose strata the maintainer cannot own, e.g. a
        relation defined in several strata.

        *seed_facts* are planted into the working copy before the first
        stratum, exactly as in :func:`~repro.engine.fixpoint.evaluate_program`
        — this is how a goal-directed (magic) program's seed enters a
        maintained materialization.  Planted facts of derived relations are
        *pinned*: they are axioms of this materialization and never
        retracted by maintenance.

        *sharding* hands the build (and every later update) to a
        :class:`~repro.engine.sharding.ShardedFixpoint` for the same
        program: recursive strata run shard-parallel rounds, counting strata
        stay one parent-side pass (they are a single enumeration) with their
        derivations absorbed into the sharded mirror.
        """
        if statistics is None:
            statistics = EvaluationStatistics()
        if sharding is not None:
            if sharding.program is not program:
                raise EvaluationError(
                    "the ShardedFixpoint was built for a different program"
                )
            if evaluators is None:
                evaluators = sharding.evaluators
            elif evaluators is not sharding.evaluators:
                raise EvaluationError(
                    "sharded maintenance must share the ShardedFixpoint's "
                    "ProgramEvaluators (pass the same object, or neither)"
                )
        if evaluators is None:
            evaluators = ProgramEvaluators(limits, execution=execution)
        seen_heads: set[str] = set()
        for index, stratum in enumerate(program.strata):
            heads = stratum.head_relation_names()
            overlap = heads & seen_heads
            if overlap:
                raise MaintenanceUnsupportedError(
                    f"relation(s) {sorted(overlap)} are defined in several strata; "
                    f"maintenance needs every relation owned by exactly one stratum"
                )
            seen_heads |= heads
        # Signed propagation through a negated literal relies on the negated
        # relation being sealed by an *earlier* stratum.  Program construction
        # guarantees that; a hand-assembled stratum list might not, and an
        # unstratifiable one has no unambiguous fixpoint to maintain.
        defined_so_far: set[str] = set()
        for index, stratum in enumerate(program.strata):
            unsealed = stratum.negated_relation_names() & (
                program.idb_relation_names() - defined_so_far
            )
            if unsealed:
                raise MaintenanceUnsupportedError(
                    f"stratum {index} negates relation(s) {sorted(unsealed)} that no "
                    f"earlier stratum defines; the program is not stratified, so its "
                    f"fixpoint is ambiguous and cannot be maintained"
                )
            defined_so_far |= stratum.head_relation_names()

        current = instance.copy()
        if seed_facts is not None:
            for fact in seed_facts:
                current.add_fact(fact)
        if sharding is not None:
            sharding.attach(current)
        states: list[_StratumState] = []
        for index, stratum in enumerate(program.strata):
            recursive = bool(stratum.head_relation_names() & stratum.body_relation_names())
            pinned = frozenset(
                Fact(name, row)
                for name in stratum.head_relation_names()
                for row in current.relation(name)
            )
            state = _StratumState(recursive, pinned)
            if recursive:
                if sharding is not None:
                    rounds = sharding.stratum_fixpoint(index, current, statistics)
                    statistics.merge_stratum(rounds)
                else:
                    evaluate_stratum(
                        stratum,
                        current,
                        limits,
                        strategy=strategy,
                        execution=execution,
                        statistics=statistics,
                        evaluators=evaluators,
                        copy=False,
                    )
            else:
                added = cls._evaluate_counting_stratum(
                    stratum, current, state, limits, statistics, evaluators
                )
                if sharding is not None and added:
                    sharding.absorb(added)
            states.append(state)
        for name in program.idb_relation_names():
            current.ensure_relation(name)
        return cls(
            program, current, states, limits, strategy, execution, evaluators, sharding
        )

    # -- durability (support-state export / restore) -----------------------------------

    def support_state(self) -> "list[tuple[bool, dict[Fact, int] | None, frozenset[Fact]]]":
        """The per-stratum maintenance support as plain data.

        One ``(recursive, counts, pinned)`` triple per stratum, in stratum
        order — together with :attr:`materialized` this is *everything*
        :meth:`update` reads, so a snapshot carrying it can be restored by
        :meth:`from_support` without re-evaluating anything.
        """
        return [
            (
                state.recursive,
                None if state.counts is None else dict(state.counts),
                state.pinned,
            )
            for state in self._states
        ]

    @classmethod
    def from_support(
        cls,
        program: Program,
        materialized: Instance,
        support: "Iterable[tuple[bool, dict[Fact, int] | None, Iterable[Fact]]]",
        limits: EvaluationLimits,
        strategy: Strategy,
        execution: ExecutionMode,
        evaluators: ProgramEvaluators,
        sharding: "ShardedFixpoint | None" = None,
    ) -> "MaintainedFixpoint":
        """Rebuild a maintained fixpoint from exported support state.

        The inverse of :meth:`support_state` + :attr:`materialized`: no
        evaluation happens — which is what makes restore-from-snapshot
        fast.  The support must match the program's strata (count and
        recursive flags, which are recomputed here); a mismatch means the
        snapshot was taken for a different program shape and is refused
        with :class:`~repro.errors.MaintenanceUnsupportedError`.  When
        *sharding* is given, the fixpoint is attached to it exactly as a
        fresh :meth:`evaluate` build would be.
        """
        states: list[_StratumState] = []
        triples = list(support)
        if len(triples) != len(program.strata):
            raise MaintenanceUnsupportedError(
                f"support state covers {len(triples)} strata but the program has "
                f"{len(program.strata)}; the snapshot matches a different program"
            )
        for stratum, (recursive, counts, pinned) in zip(program.strata, triples):
            expected = bool(stratum.head_relation_names() & stratum.body_relation_names())
            if bool(recursive) != expected:
                raise MaintenanceUnsupportedError(
                    f"support state marks a stratum recursive={bool(recursive)} but "
                    f"this build classifies it recursive={expected}; the snapshot "
                    f"matches a different program"
                )
            state = _StratumState(expected, frozenset(pinned))
            if not expected:
                state.counts = dict(counts or {})
            states.append(state)
        if sharding is not None:
            sharding.attach(materialized)
        return cls(
            program, materialized, states, limits, strategy, execution, evaluators, sharding
        )

    @staticmethod
    def _evaluate_counting_stratum(
        stratum: Stratum,
        current: Instance,
        state: _StratumState,
        limits: EvaluationLimits,
        statistics: EvaluationStatistics,
        evaluators: ProgramEvaluators,
    ) -> set[Fact]:
        """One counting pass over a non-recursive stratum.

        No head relation is read by any body in the stratum, so a single
        round reaches the fixpoint; the derived facts are buffered and
        applied after the enumeration so the read views stay stable.
        Returns the facts that were genuinely new (the sharded build absorbs
        them into its mirror).
        """
        for rule in stratum:
            current.ensure_relation(rule.head.name)
        limits.check_iterations(1)
        counts = state.counts
        assert counts is not None
        derived: list[Fact] = []
        for evaluator in evaluators.for_stratum(stratum):
            statistics.rule_applications += 1
            seen: set = set()
            for fact, valuation in evaluator.derivations(current, statistics=statistics):
                if valuation in seen:
                    continue
                seen.add(valuation)
                counts[fact] = counts.get(fact, 0) + 1
                derived.append(fact)
        new_facts: set[Fact] = set()
        for fact in derived:
            if fact not in current:
                current.add_fact(fact)
                new_facts.add(fact)
        statistics.facts_derived += len(new_facts)
        limits.check_fact_count(current.fact_count())
        statistics.merge_stratum(1)
        return new_facts

    # -- updates -----------------------------------------------------------------------

    def update(
        self,
        additions: Iterable[Fact] = (),
        retractions: Iterable[Fact] = (),
        *,
        statistics: "EvaluationStatistics | None" = None,
    ) -> MaintenanceResult:
        """Apply an EDB delta and maintain every derived relation.

        *additions* and *retractions* must target EDB relations (relations
        the program does not define); updating a derived relation directly
        is a caller error.  Raises
        :class:`~repro.errors.MaintenanceUnsupportedError` — before touching
        any state — when the update names a relation the program has never
        heard of.  Updates that reach relations read under (stratified)
        negation are maintained exactly via signed delta propagation.
        """
        if not self._valid:
            raise EvaluationError(
                "this maintained fixpoint is stale (a previous update failed midway); "
                "rebuild it with MaintainedFixpoint.evaluate"
            )
        if statistics is None:
            statistics = EvaluationStatistics()
        additions = list(additions)
        retractions = list(retractions)
        for fact in (*additions, *retractions):
            if fact.relation in self._idb:
                raise EvaluationError(
                    f"cannot update relation {fact.relation!r}: it is derived by the "
                    f"program; update the EDB relations it depends on instead"
                )
            if fact.relation not in self._known:
                # Checked on the *named* relations, before netting: even a
                # no-op delta naming a stray relation is a caller error, not
                # something to silently accept.
                raise MaintenanceUnsupportedError(
                    f"the update names relation {fact.relation!r}, which the program "
                    f"never mentions; maintenance cannot decide what it affects — "
                    f"re-evaluate from scratch (or drop the stray facts) instead"
                )

        # Net EDB delta against the current materialization.  Additions win
        # over retractions of the same fact (retract-then-add nets out).
        added_set = set(additions)
        added_facts = {fact for fact in added_set if fact not in self.materialized}
        removed_facts = {
            fact
            for fact in retractions
            if fact not in added_set and fact in self.materialized
        }
        result_added: set[Fact] = set(added_facts)
        result_removed: set[Fact] = set(removed_facts)
        touched = {fact.relation for fact in added_facts | removed_facts}
        self._check_supported(touched)
        if not touched:
            return MaintenanceResult(frozenset(), frozenset(), statistics)

        # From here on the materialization mutates; any failure leaves it
        # inconsistent with the support state, so poison the fixpoint.
        try:
            changes = _ChangeSet()
            for name in touched:
                added_rows = {f.paths for f in added_facts if f.relation == name}
                removed_rows = {f.paths for f in removed_facts if f.relation == name}
                storage = self.materialized.storage(name)
                old_rows = set(storage.rows) if storage is not None else set()
                for fact in removed_facts:
                    if fact.relation == name:
                        self.materialized.discard_fact(fact, keep_empty=True)
                for fact in added_facts:
                    if fact.relation == name:
                        self.materialized.add_fact(fact)
                changes.record(name, added_rows, removed_rows, old_rows)
            self._absorb(added_facts, removed_facts)
            statistics.facts_retracted += len(removed_facts)

            for index, (stratum, state) in enumerate(zip(self.program.strata, self._states)):
                last = index == len(self.program.strata) - 1
                if not (changes.names & stratum.body_relation_names()):
                    continue
                if state.recursive:
                    net_added, net_removed = self._maintain_dred_stratum(
                        index, stratum, state, changes, statistics
                    )
                else:
                    net_added, net_removed = self._maintain_counting_stratum(
                        index, stratum, state, changes, statistics
                    )
                statistics.facts_retracted += len(net_removed)
                result_added |= net_added
                result_removed |= net_removed
                self._commit_stratum_changes(changes, net_added, net_removed, last)
            self.limits.check_fact_count(self.materialized.fact_count())
        except Exception:
            self._valid = False
            raise
        return MaintenanceResult(frozenset(result_added), frozenset(result_removed), statistics)

    def _check_supported(self, touched: "set[str]") -> None:
        """Refuse updates the maintainer cannot give meaning to.

        Historically this also refused any update whose closure could reach
        a relation used under negation; signed counting and negation-aware
        delete–rederive now maintain those exactly (stratification seals a
        negated relation before its readers run), so the only remaining
        refusal is a touched relation the program has never heard of.  That
        one is a caller error, not a no-op: silently accepting it would let
        the materialization drift from what re-evaluating the program on
        the updated base would produce.  Unstratifiable stratum lists —
        the genuinely unsupported shape — are refused at build time in
        :meth:`evaluate`.
        """
        unknown = touched - self._known
        if unknown:
            raise MaintenanceUnsupportedError(
                f"the update names relation(s) {sorted(unknown)} that the program "
                f"never mentions; maintenance cannot decide what they affect — "
                f"re-evaluate from scratch (or drop the stray facts) instead"
            )

    def _commit_stratum_changes(
        self,
        changes: _ChangeSet,
        net_added: "set[Fact]",
        net_removed: "set[Fact]",
        last: bool,
    ) -> None:
        """Fold a stratum's net changes into the running change set."""
        by_name: dict[str, tuple[set, set]] = {}
        for fact in net_added:
            by_name.setdefault(fact.relation, (set(), set()))[0].add(fact.paths)
        for fact in net_removed:
            by_name.setdefault(fact.relation, (set(), set()))[1].add(fact.paths)
        for name, (added_rows, removed_rows) in by_name.items():
            old_rows = None
            if not last:
                # Old state for later strata: current rows minus what this
                # update added, plus what it removed.
                storage = self.materialized.storage(name)
                current_rows = set(storage.rows) if storage is not None else set()
                old_rows = (current_rows - added_rows) | removed_rows
            changes.record(name, added_rows, removed_rows, old_rows)

    # -- counting maintenance ----------------------------------------------------------

    def _maintain_counting_stratum(
        self,
        index: int,
        stratum: Stratum,
        state: _StratumState,
        changes: _ChangeSet,
        statistics: EvaluationStatistics,
    ) -> tuple[set, set]:
        """Adjust derivation counts by the telescoped delta joins.

        For a body with positive-predicate positions ``p1 < … < pn`` the
        change in satisfying valuations factors as
        ``Σ_i new(<i) ⊗ (added_i − removed_i) ⊗ old(>i)``: positions before
        the pivot read the already-updated materialization, the pivot reads
        the delta, and positions after it read the pre-update overlay.
        Every gained (lost) derivation is enumerated at exactly one pivot —
        the last changed position it uses.

        Negated predicate positions extend the same telescope (they sit
        after every positive position in the static order).  At a positive
        pivot, a changed negated position reads the *old* overlay.  A
        changed negated position is additionally a pivot itself — the
        literal flipped positive and restricted to the delta rows — with
        the **opposite** sign: a row added to the negated relation
        extinguishes every derivation it now blocks, a removed row revives
        them.  Stratification guarantees the negated relation's net delta
        is final (its owning stratum committed earlier this pass).

        Under sharding, each pivot's overlay rows are additionally
        partitioned by home shard and enumerated per shard (a derivation's
        valuation determines its pivot row, so the per-shard enumerations
        are disjoint and their counts merge exactly); shards whose partition
        of the delta is empty do no work, which is what lets disjoint
        update batches proceed without ever synchronizing.  Under a process
        executor the enumeration itself moves off the parent for
        ``local``-mode strata (see :meth:`ShardedFixpoint.counting_stratum`);
        only the count state and the net add/remove decisions stay here.
        """
        from repro.engine.evaluation import satisfying_valuations

        statistics.maintenance_rounds += 1
        assert state.counts is not None
        if self.sharding is not None:
            # Worker-resident counting: ship each shard its home slice of
            # the delta and let it enumerate the telescoped joins against
            # its resident partition.  Falls back to the parent-side loops
            # below when the executor declines (no resident workers,
            # non-local stratum, tiny delta) or when a changed relation is
            # replicated (its delta rows have no unique pivot home).
            changed = {
                name: (
                    changes.added.get(name, set()),
                    changes.removed.get(name, set()),
                )
                for name in changes.names & set(stratum.body_relation_names())
            }
            worker_counts = self.sharding.counting_stratum(index, changed, statistics)
            if worker_counts is not None:
                return self._apply_count_deltas(worker_counts, state, statistics)
        delta_counts: dict[Fact, int] = {}
        # The same (polarity, relation) delta rows pivot in several rules and
        # at several positions: partition them once per stratum pass, not
        # once per occurrence.
        pivot_parts_cache: "dict[tuple[str, str], list[tuple[int | None, Instance]]]" = {}

        def pivot_parts(polarity: str, name: str, overlay: Instance, rows):
            parts = pivot_parts_cache.get((polarity, name))
            if parts is None:
                parts = pivot_parts_cache[(polarity, name)] = self._pivot_parts(
                    name, overlay, rows
                )
            return parts

        for evaluator in self.evaluators.for_stratum(stratum):
            read_names = evaluator.body_relation_names | evaluator.negated_relation_names
            if not (read_names & changes.names):
                continue
            statistics.rule_applications += 1
            positions = evaluator.positions_in_order
            negated_positions = tuple(
                (position, literal)
                for position, literal in enumerate(evaluator.order)
                if literal.negative and literal.is_predicate()
            )
            # Negations follow every positive predicate in the static order,
            # so at any positive pivot every changed negated position reads
            # the pre-update overlay.
            negative_old = {
                position: changes.old_overlay
                for position, literal in negated_positions
                if literal.atom.name in changes.names
            }
            for pivot_index, (pivot, name) in enumerate(positions):
                if name not in changes.names:
                    continue
                overrides = {
                    position: changes.old_overlay
                    for position, later_name in positions[pivot_index + 1 :]
                    if later_name in changes.names
                }
                for polarity, overlay, sign in (
                    ("added", changes.added_overlay, 1),
                    ("removed", changes.removed_overlay, -1),
                ):
                    rows = overlay.relation(name)
                    if not rows:
                        continue
                    parts = pivot_parts(polarity, name, overlay, rows)
                    for shard, part in parts:
                        with self._shard_statistics(shard, statistics) as shard_stats:
                            shard_stats.delta_restricted_applications += 1
                            frontier = {pivot: part, **overrides}
                            seen: set = set()
                            for fact, valuation in evaluator.derivations(
                                self.materialized,
                                frontier=frontier,
                                statistics=shard_stats,
                                negative_sources=negative_old or None,
                            ):
                                if valuation in seen:
                                    continue
                                seen.add(valuation)
                                delta_counts[fact] = delta_counts.get(fact, 0) + sign
            for pivot, literal in negated_positions:
                name = literal.atom.name
                if name not in changes.names:
                    continue
                flipped = list(evaluator.order)
                flipped[pivot] = literal.negated()
                # Telescope: changed negated positions *after* this pivot
                # still read old; those before it (and every positive
                # position) read the updated materialization.
                later_old = {
                    position: changes.old_overlay
                    for position, other in negated_positions
                    if position > pivot and other.atom.name in changes.names
                }
                for polarity, overlay, sign in (
                    ("added", changes.added_overlay, -1),
                    ("removed", changes.removed_overlay, 1),
                ):
                    rows = overlay.relation(name)
                    if not rows:
                        continue
                    parts = pivot_parts(polarity, name, overlay, rows)
                    for shard, part in parts:
                        with self._shard_statistics(shard, statistics) as shard_stats:
                            shard_stats.delta_restricted_applications += 1
                            seen = set()
                            for valuation in satisfying_valuations(
                                evaluator.rule,
                                self.materialized,
                                self.limits,
                                order=flipped,
                                frontier={pivot: part},
                                execution=self.execution,
                                statistics=shard_stats,
                                negative_sources=later_old or None,
                            ):
                                if valuation in seen:
                                    continue
                                seen.add(valuation)
                                fact = valuation.apply_to_predicate(evaluator.rule.head)
                                for fact_path in fact.paths:
                                    self.limits.check_path_length(len(fact_path))
                                delta_counts[fact] = delta_counts.get(fact, 0) + sign

        return self._apply_count_deltas(delta_counts, state, statistics)

    def _apply_count_deltas(
        self,
        delta_counts: "dict[Fact, int]",
        state: _StratumState,
        statistics: EvaluationStatistics,
    ) -> tuple[set, set]:
        """Fold signed derivation-count deltas into the stratum's count state.

        A fact whose support count crosses zero materializes (or retracts);
        pinned facts stay present regardless.  This is the authoritative
        half of counting maintenance — the enumeration that produced
        *delta_counts* may have run parent-side or on the resident workers,
        but the counts themselves only live here.
        """
        counts = state.counts
        assert counts is not None
        net_added: set[Fact] = set()
        net_removed: set[Fact] = set()
        for fact, change in delta_counts.items():
            if change == 0:
                continue
            before = counts.get(fact, 0)
            after = before + change
            if after < 0:
                raise EvaluationError(
                    f"maintenance drove the support count of {fact} below zero; "
                    f"the counting state is corrupt"
                )
            if after:
                counts[fact] = after
            else:
                counts.pop(fact, None)
            pinned = fact in state.pinned
            present_before = pinned or before > 0
            present_after = pinned or after > 0
            if present_after and not present_before:
                self.materialized.add_fact(fact)
                net_added.add(fact)
            elif present_before and not present_after:
                self.materialized.discard_fact(fact, keep_empty=True)
                net_removed.add(fact)
        statistics.facts_derived += len(net_added)
        self._absorb(net_added, net_removed)
        return net_added, net_removed

    def _pivot_parts(
        self, name: str, overlay: Instance, rows: "frozenset"
    ) -> "list[tuple[int | None, Instance]]":
        """The per-shard frontier instances for one pivot's overlay rows.

        Unsharded, the overlay itself is the single part.  Sharded, the
        pivot relation's rows are split by home shard into small frontier
        instances (the frontier is only ever read at the pivot position, so
        a single-relation instance is equivalent to the full overlay there).
        """
        if self.sharding is None:
            return [(None, overlay)]
        parts: "list[tuple[int | None, Instance]]" = []
        for shard, shard_rows in enumerate(self.sharding.spec.partition_rows(name, rows)):
            if not shard_rows:
                continue
            part = Instance()
            part.set_relation_rows(name, shard_rows)
            parts.append((shard, part))
        return parts

    # -- delete-rederive maintenance ---------------------------------------------------

    def _maintain_dred_stratum(
        self,
        index: int,
        stratum: Stratum,
        state: _StratumState,
        changes: _ChangeSet,
        statistics: EvaluationStatistics,
    ) -> tuple[set, set]:
        """Classic DRed: over-delete, rederive survivors, propagate insertions.

        Stratified negated reads extend both halves with the opposite sign.
        Rows *added* to a negated relation become kill seeds: derivations
        they newly block are enumerated against the old state (the negated
        literal flipped positive and restricted to the added rows) and
        pre-seed the overdeletion cascade.  Rows *removed* from a negated
        relation become insertion seeds: derivations they newly admit are
        enumerated against the new state and join the semi-naive insertion
        propagation.  Stratification makes both exact — the negated
        relation's delta is final before this stratum runs.

        Sharded, each phase fans its frontier out by home shard —
        overdeletion rounds and rederivation probes partition their fact
        sets, and the insertion cascade runs through the sharded round
        engine (parallel under a process executor).
        """
        evaluators = self.evaluators.for_stratum(stratum)
        head_names = stratum.head_relation_names()
        body_names = stratum.body_relation_names()
        negated_changed = changes.names & stratum.negated_relation_names()
        outcome = None
        if self.sharding is not None and not negated_changed:
            # Worker-resident DRed: ship the stratum's delta (and the removal
            # seeds) to the resident workers, which run the overdeletion
            # cascade and the rederivation probes against their partitions.
            # Falls back to the parent-side phases below when the executor
            # declines (no resident workers, non-local stratum, tiny delta)
            # or when the delta flows through a negated literal — the worker
            # cascade knows nothing of flipped-literal kill seeds.
            changed = {
                name: (
                    changes.added.get(name, set()),
                    changes.removed.get(name, set()),
                )
                for name in changes.names & set(body_names)
            }
            removal_seeds = changes.facts(changes.removed, body_names)
            outcome = self.sharding.dred_stratum(
                index, changed, removal_seeds, state.pinned, statistics
            )
        if outcome is not None:
            # The workers applied these to their resident partitions and the
            # sharded fixpoint updated its mirror; only the authoritative
            # instance is left to bring in step — no catch-up to queue.
            overdeleted, rederived = outcome
            for fact in overdeleted:
                self.materialized.discard_fact(fact, keep_empty=True)
            for fact in rederived:
                self.materialized.add_fact(fact)
        else:
            kill_seeds = set()
            if negated_changed:
                kill_seeds = self._negation_seeds(
                    evaluators, head_names, state, changes, statistics, killed=True
                )
            overdeleted = self._overdelete(
                evaluators, head_names, state, changes, statistics, extra_seeds=kill_seeds
            )
            for fact in overdeleted:
                self.materialized.discard_fact(fact, keep_empty=True)
            self._absorb((), overdeleted)
            rederived = self._rederive(evaluators, overdeleted, statistics)
            self._absorb(rederived)

        gained: set[Fact] = set()
        if negated_changed:
            # Derivations newly admitted by rows leaving a negated relation.
            # They probe the *new* state (the stratum's deletions are already
            # applied), land in the materialization directly, and seed the
            # propagation below like any other insertion.
            gained = self._negation_seeds(
                evaluators, head_names, state, changes, statistics, killed=False
            )
            gained = {fact for fact in gained if fact not in self.materialized}
            for fact in gained:
                self.materialized.add_fact(fact)
            self._absorb(gained)
            statistics.facts_derived += len(gained)

        # One semi-naive propagation finishes both halves of the update: the
        # rederived facts re-support other over-deleted facts (whose one-shot
        # probe may have run before their support came back) and the update's
        # added facts derive genuinely new ones.
        seeds = changes.facts(changes.added, stratum.body_relation_names()) | rederived | gained
        if self.sharding is not None:
            rounds, inserted = self.sharding.propagate(
                index, self.materialized, seeds, statistics, collect=True
            )
        else:
            rounds, inserted = propagate_delta(
                evaluators,
                self.materialized,
                seeds,
                self.limits,
                statistics,
                strategy="seminaive",
                collect=True,
            )
        statistics.maintenance_rounds += rounds

        net_added = (inserted | gained) - overdeleted
        net_removed = {fact for fact in overdeleted if fact not in self.materialized}
        return net_added, net_removed

    def _negation_seeds(
        self,
        evaluators: list[RuleEvaluator],
        head_names: frozenset[str],
        state: _StratumState,
        changes: _ChangeSet,
        statistics: EvaluationStatistics,
        *,
        killed: bool,
    ) -> set[Fact]:
        """Derivations a negated relation's delta kills (or newly admits).

        The flip trick: the negated literal becomes a positive pivot
        restricted to the delta rows.  With ``killed=True`` the pivot reads
        the *added* rows and every other changed position (positive via the
        frontier overlay, negated via ``negative_sources``) reads the
        pre-update state — these are derivations that held before and are
        blocked now.  With ``killed=False`` the pivot reads the *removed*
        rows against the current (new) state — derivations admitted now
        that were blocked before.
        """
        from repro.engine.evaluation import satisfying_valuations

        seeds: set[Fact] = set()
        delta = changes.removed if not killed else changes.added
        for evaluator in evaluators:
            negated_positions = [
                (position, literal)
                for position, literal in enumerate(evaluator.order)
                if literal.negative
                and literal.is_predicate()
                and literal.atom.name in changes.names
            ]
            if not negated_positions:
                continue
            positions = evaluator.positions_in_order
            for pivot, literal in negated_positions:
                name = literal.atom.name
                rows = delta.get(name)
                if not rows:
                    continue
                flipped = list(evaluator.order)
                flipped[pivot] = literal.negated()
                frontier: dict[int, Instance] = {}
                negative_sources = None
                if killed:
                    frontier = {
                        position: changes.old_overlay
                        for position, other_name in positions
                        if other_name in changes.names
                    }
                    negative_sources = {
                        position: changes.old_overlay
                        for position, other in negated_positions
                        if position != pivot
                    } or None
                part = Instance()
                part.set_relation_rows(name, rows)
                frontier[pivot] = part
                statistics.delta_restricted_applications += 1
                seen: set = set()
                for valuation in satisfying_valuations(
                    evaluator.rule,
                    self.materialized,
                    self.limits,
                    order=flipped,
                    frontier=frontier,
                    execution=self.execution,
                    statistics=statistics,
                    negative_sources=negative_sources,
                ):
                    if valuation in seen:
                        continue
                    seen.add(valuation)
                    fact = valuation.apply_to_predicate(evaluator.rule.head)
                    if fact.relation not in head_names or fact in state.pinned:
                        continue
                    if killed and fact not in self.materialized:
                        continue
                    for fact_path in fact.paths:
                        self.limits.check_path_length(len(fact_path))
                    seeds.add(fact)
        return seeds

    def _overdelete(
        self,
        evaluators: list[RuleEvaluator],
        head_names: frozenset[str],
        state: _StratumState,
        changes: _ChangeSet,
        statistics: EvaluationStatistics,
        extra_seeds: "set[Fact] | None" = None,
    ) -> set[Fact]:
        """Everything derivable through a deleted fact, to a fixpoint.

        Evaluation runs against the *old* database: the stratum's own facts
        are still physically present, positions over earlier-changed
        relations are overlaid with their pre-update rows, and changed
        *negated* positions read the old overlay via ``negative_sources``.
        *extra_seeds* pre-loads the cascade with facts killed through
        negated literals (enumerated by :meth:`_negation_seeds`).  Sharded,
        each round's frontier is partitioned by home shard and the parts
        run independently (they are delta restrictions over disjoint row
        sets, so the union of their derivations is the round's derivations).
        """
        overdeleted: set[Fact] = set(extra_seeds or ())
        frontier_facts = changes.facts(
            changes.removed, {name for ev in evaluators for name in ev.body_relation_names}
        )
        frontier_facts |= overdeleted
        frontier_instance = Instance()
        rounds = 0
        while frontier_facts:
            rounds += 1
            self.limits.check_iterations(rounds)
            statistics.maintenance_rounds += 1
            new_deleted: set[Fact] = set()
            for shard, part in self._frontier_parts(frontier_facts):
                with self._shard_statistics(shard, statistics) as shard_stats:
                    frontier_instance.replace_with(part)
                    frontier_names = {fact.relation for fact in part}
                    for evaluator in evaluators:
                        if not (evaluator.body_relation_names & frontier_names):
                            continue
                        shard_stats.rule_applications += 1
                        positions = evaluator.positions_in_order
                        negative_old = {
                            position: changes.old_overlay
                            for position, literal in enumerate(evaluator.order)
                            if literal.negative
                            and literal.is_predicate()
                            and literal.atom.name in changes.names
                        } or None
                        for pivot, name in positions:
                            if name not in frontier_names:
                                continue
                            overrides = {
                                position: changes.old_overlay
                                for position, other in positions
                                if position != pivot and other in changes.names
                            }
                            shard_stats.delta_restricted_applications += 1
                            frontier = {pivot: frontier_instance, **overrides}
                            for fact in evaluator.derive(
                                self.materialized,
                                frontier=frontier,
                                statistics=shard_stats,
                                negative_sources=negative_old,
                            ):
                                if (
                                    fact.relation in head_names
                                    and fact not in overdeleted
                                    and fact not in state.pinned
                                    and fact in self.materialized
                                ):
                                    new_deleted.add(fact)
            overdeleted |= new_deleted
            frontier_facts = new_deleted
        return overdeleted

    def _frontier_parts(
        self, facts: "set[Fact]"
    ) -> "list[tuple[int | None, set[Fact]]]":
        """Partition a frontier by home shard (one all-facts part unsharded)."""
        if self.sharding is None:
            return [(None, facts)]
        return [
            (shard, part)
            for shard, part in enumerate(self.sharding.spec.partition_facts(facts))
            if part
        ]

    def _rederive(
        self,
        evaluators: list[RuleEvaluator],
        overdeleted: set[Fact],
        statistics: EvaluationStatistics,
    ) -> set[Fact]:
        """Probe every over-deleted fact once for an alternative derivation.

        Each attempt binds the head to the candidate fact and probes the
        body against the current (post-deletion) state; a success re-adds
        the fact immediately.  One sweep is enough: facts whose support only
        comes back through a *later* rederivation are recovered by the
        semi-naive propagation that follows (the rederived facts seed it),
        so the sweep stays linear in the over-deletion instead of quadratic.
        """
        from repro.engine.match import match_fact

        if not overdeleted:
            return set()
        statistics.maintenance_rounds += 1
        by_head: dict[str, list[RuleEvaluator]] = {}
        for evaluator in evaluators:
            by_head.setdefault(evaluator.rule.head.name, []).append(evaluator)
        rederived: set[Fact] = set()
        for shard, part in self._frontier_parts(overdeleted):
            with self._shard_statistics(shard, statistics) as shard_stats:
                for fact in part:
                    for evaluator in by_head.get(fact.relation, ()):
                        shard_stats.rederivation_attempts += 1
                        initial = list(match_fact(evaluator.rule.head, fact))
                        if not initial:
                            continue
                        derivation = next(
                            iter(
                                evaluator.derivations(
                                    self.materialized,
                                    initial_valuations=initial,
                                    statistics=shard_stats,
                                )
                            ),
                            None,
                        )
                        if derivation is not None:
                            self.materialized.add_fact(fact)
                            rederived.add(fact)
                            break
        statistics.facts_derived += len(rederived)
        return rederived
