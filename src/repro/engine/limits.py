"""Resource limits for fixpoint evaluation.

Sequence Datalog programs need not terminate (Example 2.3 of the paper shows
a two-rule program that never does).  The paper only considers programs that
always terminate, but an executable engine must defend itself: evaluation is
parameterised by an :class:`EvaluationLimits` object, and breaching any limit
raises :class:`~repro.errors.EvaluationBudgetExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationBudgetExceeded

__all__ = ["EvaluationLimits", "DEFAULT_LIMITS"]


@dataclass(frozen=True)
class EvaluationLimits:
    """Limits enforced while computing a stratum's fixpoint.

    Attributes:
        max_iterations: maximum number of naive/semi-naive iterations per stratum.
        max_facts: maximum total number of facts the instance may grow to.
        max_path_length: maximum length of any derived path (``None`` = unlimited).
        max_derivations_per_rule: cap on valuations explored for a single rule in
            a single iteration (``None`` = unlimited); guards against explosive
            associative matching.
    """

    max_iterations: int = 10_000
    max_facts: int = 1_000_000
    max_path_length: int | None = 10_000
    max_derivations_per_rule: int | None = None

    def check_iterations(self, iterations: int) -> None:
        """Raise if the iteration budget is exhausted."""
        if iterations > self.max_iterations:
            raise EvaluationBudgetExceeded(
                f"fixpoint did not converge within {self.max_iterations} iterations "
                f"(the program may not terminate on this instance)",
                limit_name="max_iterations",
            )

    def check_fact_count(self, count: int) -> None:
        """Raise if the instance has grown beyond the fact budget."""
        if count > self.max_facts:
            raise EvaluationBudgetExceeded(
                f"instance grew beyond {self.max_facts} facts "
                f"(the program may not terminate on this instance)",
                limit_name="max_facts",
            )

    def check_path_length(self, length: int) -> None:
        """Raise if a derived path exceeds the length budget."""
        if self.max_path_length is not None and length > self.max_path_length:
            raise EvaluationBudgetExceeded(
                f"derived a path of length {length}, exceeding the limit of "
                f"{self.max_path_length}",
                limit_name="max_path_length",
            )

    def check_derivations(self, count: int) -> None:
        """Raise if a single rule explored too many valuations in one iteration."""
        if self.max_derivations_per_rule is not None and count > self.max_derivations_per_rule:
            raise EvaluationBudgetExceeded(
                f"a single rule produced more than {self.max_derivations_per_rule} "
                f"candidate valuations in one iteration",
                limit_name="max_derivations_per_rule",
            )


#: Default limits, suitable for the paper's examples and the test workloads.
DEFAULT_LIMITS = EvaluationLimits()
